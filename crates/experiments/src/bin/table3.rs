//! Regenerate Table 3 of CSZ'92 (the unified scheduler carrying guaranteed,
//! predicted and datagram traffic on the Figure-1 chain).
//!
//! Usage: `cargo run --release -p ispn-experiments --bin table3 [--fast] [--seeds N]`
//!
//! `--seeds N` replicates the table across `N` derived seeds (a seed-axis
//! sweep fanned across threads) and prints each replication — the paper
//! reports one random run; the sweep shows how much the sample rows move.

use ispn_experiments::{config::PaperConfig, report, table3};
use ispn_scenario::SweepRunner;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fast = args.iter().any(|a| a == "--fast");
    let cfg = if fast {
        PaperConfig::fast()
    } else {
        PaperConfig::paper()
    };
    let seeds = match args.iter().position(|a| a == "--seeds") {
        None => 1,
        Some(i) => match args.get(i + 1).map(|n| n.parse::<u64>()) {
            Some(Ok(n)) if n >= 1 => n,
            _ => {
                eprintln!("--seeds needs a positive integer, e.g. `table3 --seeds 5`");
                std::process::exit(2);
            }
        },
    };
    if seeds <= 1 {
        eprintln!(
            "running Table 3 ({} simulated seconds)...",
            cfg.duration.as_secs_f64()
        );
        let t = table3::run(&cfg);
        println!("{}", report::render_table3(&t));
        return;
    }
    let runner = SweepRunner::max_parallel();
    let seed_axis: Vec<u64> = (0..seeds).map(|i| cfg.seed.wrapping_add(i)).collect();
    eprintln!(
        "running Table 3 across {} seeds ({} simulated seconds each, {} threads)...",
        seeds,
        cfg.duration.as_secs_f64(),
        runner.threads()
    );
    for (seed, t) in table3::run_seeds(&cfg, &seed_axis, &runner) {
        println!("seed {seed:#x}:");
        println!("{}", report::render_table3(&t));
    }
}
