//! Regenerate Table 3 of CSZ'92 (the unified scheduler carrying guaranteed,
//! predicted and datagram traffic on the Figure-1 chain).
//!
//! Usage: `cargo run --release -p ispn-experiments --bin table3 [--fast] [--seeds N] [--stream] [--workers N | --hosts LIST] [--batch N] [--serve ADDR]`
//!
//! `--seeds N` replicates the table across `N` derived seeds (a seed-axis
//! sweep fanned across threads) and prints each replication — the paper
//! reports one random run; the sweep shows how much the sample rows move.
//! `--stream` prints one stderr progress line per completed replication;
//! `--workers N` fans the seed sweep across N worker subprocesses (this
//! binary re-invoked with `--sweep-worker --seeds N`); `--hosts LIST`
//! fans it across already-listening `--serve` workers over TCP instead
//! (`--batch N` pipelines requests in either mode); `--serve ADDR` turns
//! this invocation into such a TCP worker (pass the same `--seeds N` to
//! listener and parent so both build the same axis);
//! `--telemetry[=FILE]` renders the seed sweep's per-point wall-time
//! summary to stderr (or JSON to FILE).  Stdout is byte-identical to a
//! batch in-process run in every mode.

use ispn_experiments::{cli, config::PaperConfig, report, table3};
use ispn_scenario::{NullObserver, ProgressObserver, SweepObserver, TelemetryCollector};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fast = args.iter().any(|a| a == "--fast");
    let stream = args.iter().any(|a| a == "--stream");
    let telemetry = cli::parse_telemetry(&args);
    let cfg = if fast {
        PaperConfig::fast()
    } else {
        PaperConfig::paper()
    };
    let seeds = match args.iter().position(|a| a == "--seeds") {
        None => 1,
        Some(i) => match args.get(i + 1).map(|n| n.parse::<u64>()) {
            Some(Ok(n)) if n >= 1 => n,
            _ => {
                eprintln!("--seeds needs a positive integer, e.g. `table3 --seeds 5`");
                std::process::exit(2);
            }
        },
    };
    let seed_axis: Vec<u64> = (0..seeds).map(|i| cfg.seed.wrapping_add(i)).collect();
    if cli::is_sweep_worker(&args) {
        table3::serve_worker(&cfg, &seed_axis).expect("sweep worker I/O");
        return;
    }
    if let Some(addr) = cli::parse_serve(&args) {
        table3::serve_listener(&cfg, &seed_axis, &addr).expect("sweep listener I/O");
        return;
    }
    if seeds <= 1 {
        if cli::parse_workers(&args).is_some() {
            eprintln!("--workers applies to the seed sweep; a single-seed run stays in-process");
        }
        if telemetry.is_some() {
            eprintln!("--telemetry applies to the seed sweep; pass `--seeds N` with N > 1");
        }
        eprintln!(
            "running Table 3 ({} simulated seconds)...",
            cfg.duration.as_secs_f64()
        );
        let t = table3::run(&cfg);
        println!("{}", report::render_table3(&t));
        return;
    }
    let mut worker_args = vec!["--seeds".to_string(), seeds.to_string()];
    if fast {
        worker_args.push("--fast".to_string());
    }
    let exec = cli::sweep_exec(&args, &worker_args);
    eprintln!(
        "running Table 3 across {} seeds ({} simulated seconds each, {})...",
        seeds,
        cfg.duration.as_secs_f64(),
        exec.description()
    );
    let progress = ProgressObserver::new();
    let base: &dyn SweepObserver<(u64, table3::Table3)> =
        if stream { &progress } else { &NullObserver };
    let collector = TelemetryCollector::new(base);
    let observer: &dyn SweepObserver<(u64, table3::Table3)> = if telemetry.is_some() {
        &collector
    } else {
        base
    };
    let reports = table3::run_seeds_exec(&cfg, &seed_axis, &exec, observer);
    print!("{}", report::render_table3_seeds(&reports));
    if let Some(sink) = &telemetry {
        cli::emit_telemetry(sink, &collector.summary());
    }
    let failures = ispn_scenario::failed_points(&reports);
    if failures > 0 {
        eprintln!("{failures} sweep point(s) failed - see the report above");
        std::process::exit(1);
    }
}
