//! Run the mesh cross-traffic study: guaranteed + predicted + datagram
//! flows competing on the shared interior links of a 3×3 grid, swept over
//! the Predicted-Low cross-traffic level.  `ISPN_FAST=1` runs a shortened
//! sweep (the CI smoke configuration).

use ispn_experiments::config::PaperConfig;
use ispn_experiments::{mesh, report};
use ispn_scenario::SweepRunner;

fn main() {
    let fast = std::env::var("ISPN_FAST")
        .map(|v| v == "1")
        .unwrap_or(false);
    let (cfg, levels): (PaperConfig, &[usize]) = if fast {
        (
            PaperConfig {
                duration: ispn_sim::SimTime::from_secs(20),
                ..PaperConfig::paper()
            },
            &[1, 4],
        )
    } else {
        (PaperConfig::medium(), &[1, 3, 6])
    };
    let runner = SweepRunner::max_parallel();
    eprintln!(
        "running {} mesh scenarios of {} simulated seconds each on {} threads …",
        levels.len(),
        cfg.duration.as_secs_f64(),
        runner.threads()
    );
    let outcomes = mesh::sweep_with(&cfg, levels, &runner);
    println!("{}", report::render_mesh(&outcomes));
    for o in &outcomes {
        assert_eq!(
            o.classes[0].loss_rate, 0.0,
            "guaranteed flows must never lose a packet to a buffer"
        );
    }
    println!("guaranteed loss: 0 packets at every cross-traffic level (checked)");
}
