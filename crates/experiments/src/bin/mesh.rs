//! Run the mesh cross-traffic study: guaranteed + predicted + datagram
//! flows competing on the shared interior links of a 3×3 grid, swept over
//! the Predicted-Low cross-traffic level.  `ISPN_FAST=1` runs a shortened
//! sweep (the CI smoke configuration); `--stream` prints one stderr
//! progress line per completed point; `--workers N` fans the sweep across
//! N worker subprocesses (this binary re-invoked with `--sweep-worker`;
//! the `ISPN_FAST` configuration is inherited); `--hosts LIST` fans it
//! across already-listening `--serve` workers over TCP instead
//! (`--batch N` pipelines requests in either mode); `--serve ADDR` turns
//! this invocation into such a TCP worker (set the same `ISPN_FAST` on
//! both sides); `--telemetry[=FILE]` renders the sweep's per-point
//! wall-time summary to stderr (or JSON to FILE).  Stdout stays
//! byte-identical to a batch in-process run in every mode.

use ispn_experiments::config::PaperConfig;
use ispn_experiments::{cli, mesh, report};
use ispn_scenario::{NullObserver, ProgressObserver, SweepObserver, TelemetryCollector};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fast = std::env::var("ISPN_FAST")
        .map(|v| v == "1")
        .unwrap_or(false);
    let stream = args.iter().any(|a| a == "--stream");
    let telemetry = cli::parse_telemetry(&args);
    let (cfg, levels): (PaperConfig, &[usize]) = if fast {
        (
            PaperConfig {
                duration: ispn_sim::SimTime::from_secs(20),
                ..PaperConfig::paper()
            },
            &[1, 4],
        )
    } else {
        (PaperConfig::medium(), &[1, 3, 6])
    };
    if cli::is_sweep_worker(&args) {
        mesh::serve_worker(&cfg, levels).expect("sweep worker I/O");
        return;
    }
    if let Some(addr) = cli::parse_serve(&args) {
        mesh::serve_listener(&cfg, levels, &addr).expect("sweep listener I/O");
        return;
    }
    let exec = cli::sweep_exec(&args, &[]);
    eprintln!(
        "running {} mesh scenarios of {} simulated seconds each on {} …",
        levels.len(),
        cfg.duration.as_secs_f64(),
        exec.description()
    );
    let progress = ProgressObserver::new();
    let base: &dyn SweepObserver<mesh::MeshOutcome> =
        if stream { &progress } else { &NullObserver };
    let collector = TelemetryCollector::new(base);
    let observer: &dyn SweepObserver<mesh::MeshOutcome> = if telemetry.is_some() {
        &collector
    } else {
        base
    };
    let reports = mesh::sweep_exec(&cfg, levels, &exec, observer);
    println!("{}", report::render_mesh(&reports));
    if let Some(sink) = &telemetry {
        cli::emit_telemetry(sink, &collector.summary());
    }
    let failures = ispn_scenario::failed_points(&reports);
    if failures > 0 {
        eprintln!("{failures} sweep point(s) failed - see the report above");
        std::process::exit(1);
    }
    for o in reports.iter().filter_map(|r| r.result.as_ref().ok()) {
        assert_eq!(
            o.classes[0].loss_rate, 0.0,
            "guaranteed flows must never lose a packet to a buffer"
        );
    }
    println!("guaranteed loss: 0 packets at every cross-traffic level (checked)");
}
