//! Regenerate Table 1 of CSZ'92 (WFQ vs FIFO on a single shared link).
//!
//! Usage: `cargo run --release -p ispn-experiments --bin table1 [--fast] [--stream]`
//!
//! `--stream` prints one stderr progress line per completed sweep point;
//! stdout (the final table) is byte-identical to a batch run.

use ispn_experiments::{config::PaperConfig, report, table1};
use ispn_scenario::{NullObserver, ProgressObserver, SweepObserver, SweepRunner};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fast = args.iter().any(|a| a == "--fast");
    let stream = args.iter().any(|a| a == "--stream");
    let cfg = if fast {
        PaperConfig::fast()
    } else {
        PaperConfig::paper()
    };
    let runner = SweepRunner::max_parallel();
    eprintln!(
        "running Table 1 ({} simulated seconds per discipline, {} threads)...",
        cfg.duration.as_secs_f64(),
        runner.threads()
    );
    let progress = ProgressObserver::new();
    let observer: &dyn SweepObserver<table1::Table1Row> =
        if stream { &progress } else { &NullObserver };
    let reports = table1::run_reports(&cfg, &runner, observer);
    println!("{}", report::render_table1(&reports));
    let failures = ispn_scenario::failed_points(&reports);
    if failures > 0 {
        eprintln!("{failures} sweep point(s) panicked - see the report above");
        std::process::exit(1);
    }
}
