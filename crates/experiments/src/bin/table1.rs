//! Regenerate Table 1 of CSZ'92 (WFQ vs FIFO on a single shared link).
//!
//! Usage: `cargo run --release -p ispn-experiments --bin table1 [--fast]`

use ispn_experiments::{config::PaperConfig, report, table1};
use ispn_scenario::SweepRunner;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let cfg = if fast {
        PaperConfig::fast()
    } else {
        PaperConfig::paper()
    };
    let runner = SweepRunner::max_parallel();
    eprintln!(
        "running Table 1 ({} simulated seconds per discipline, {} threads)...",
        cfg.duration.as_secs_f64(),
        runner.threads()
    );
    let t = table1::run_with(&cfg, &runner);
    println!("{}", report::render_table1(&t));
}
