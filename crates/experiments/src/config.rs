//! The Appendix constants, in one place.

use ispn_sim::SimTime;

/// Global parameters of the paper's simulations.
#[derive(Debug, Clone)]
pub struct PaperConfig {
    /// Inter-switch link speed (1 Mbit/s in the paper).
    pub link_rate_bps: f64,
    /// Packet size (1000 bits in the paper).
    pub packet_bits: u64,
    /// Switch output buffer (200 packets in the paper).
    pub buffer_packets: usize,
    /// Length of the simulated run (10 minutes in the paper).
    pub duration: SimTime,
    /// Average generation rate A of every on/off source (85 pkt/s).
    pub avg_rate_pps: f64,
    /// Base seed; per-flow seeds are derived from it.
    pub seed: u64,
}

impl Default for PaperConfig {
    fn default() -> Self {
        PaperConfig {
            link_rate_bps: 1_000_000.0,
            packet_bits: 1000,
            buffer_packets: 200,
            duration: SimTime::from_secs(600),
            avg_rate_pps: 85.0,
            seed: 0x1992_5160,
        }
    }
}

impl PaperConfig {
    /// The full configuration used by the paper.
    pub fn paper() -> Self {
        PaperConfig::default()
    }

    /// A shortened configuration for unit and integration tests: identical
    /// parameters but a much shorter run.
    pub fn fast() -> Self {
        PaperConfig {
            duration: SimTime::from_secs(40),
            ..PaperConfig::default()
        }
    }

    /// A medium-length configuration (used by extension experiments whose
    /// sweep repeats many runs).
    pub fn medium() -> Self {
        PaperConfig {
            duration: SimTime::from_secs(150),
            ..PaperConfig::default()
        }
    }

    /// The per-packet transmission time — the unit every delay in the
    /// paper's tables is expressed in (1 ms for the default parameters).
    pub fn packet_time(&self) -> SimTime {
        ispn_sim::time::transmission_time(self.packet_bits, self.link_rate_bps)
    }

    /// Convert a delay in seconds to the paper's packet-time unit.
    pub fn to_packet_times(&self, delay_secs: f64) -> f64 {
        delay_secs / self.packet_time().as_secs_f64()
    }

    /// The per-flow seed for flow number `i`.
    pub fn flow_seed(&self, i: u32) -> u64 {
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(i as u64 + 1)
    }

    /// The link capacity in packets per second.
    pub fn link_rate_pps(&self) -> f64 {
        self.link_rate_bps / self.packet_bits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_the_appendix() {
        let c = PaperConfig::paper();
        assert_eq!(c.link_rate_bps, 1_000_000.0);
        assert_eq!(c.packet_bits, 1000);
        assert_eq!(c.buffer_packets, 200);
        assert_eq!(c.duration, SimTime::from_secs(600));
        assert_eq!(c.avg_rate_pps, 85.0);
        assert_eq!(c.packet_time(), SimTime::MILLISECOND);
        assert_eq!(c.link_rate_pps(), 1000.0);
    }

    #[test]
    fn packet_time_conversion() {
        let c = PaperConfig::paper();
        assert!((c.to_packet_times(0.005) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn flow_seeds_are_distinct() {
        let c = PaperConfig::paper();
        let seeds: std::collections::BTreeSet<u64> = (0..100).map(|i| c.flow_seed(i)).collect();
        assert_eq!(seeds.len(), 100);
    }

    #[test]
    fn fast_config_only_changes_duration() {
        let f = PaperConfig::fast();
        let p = PaperConfig::paper();
        assert!(f.duration < p.duration);
        assert_eq!(f.avg_rate_pps, p.avg_rate_pps);
    }
}
