//! The Figure-1 topology and its 22-flow placement.
//!
//! "This network has four equivalent 1 Mbit/sec inter-switch links, and each
//! link is shared by 10 flows.  There are, in total, 22 flows; all of them
//! have the same statistical generation process but they travel different
//! network paths.  12 traverse only one inter-switch link, 4 traverse two
//! inter-switch links, 4 traverse three inter-switch links, and 2 traverse
//! all four inter-switch links."
//!
//! The paper does not publish the exact placement, so DESIGN.md derives one
//! that satisfies every stated constraint — including, for Table 3, the
//! per-link mix of 2 Guaranteed-Peak, 1 Guaranteed-Average, 3 Predicted-High
//! and 4 Predicted-Low real-time flows plus one datagram TCP connection —
//! and the tests in this module verify it.

use ispn_net::{LinkId, NodeId, Topology};
use ispn_scenario::{LinkProfile, TopologySpec};
use ispn_sim::SimTime;

use crate::config::PaperConfig;

/// Number of inter-switch links in Figure 1.
pub const NUM_LINKS: usize = 4;
/// Number of real-time flows in Figure 1.
pub const NUM_FLOWS: usize = 22;
/// Real-time flows sharing each inter-switch link.
pub const FLOWS_PER_LINK: usize = 10;

/// The Table-3 class of a real-time flow (Table 2 ignores the distinction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FlowKind {
    /// Guaranteed service with clock rate equal to the source's peak rate.
    GuaranteedPeak,
    /// Guaranteed service with clock rate equal to the source's average rate.
    GuaranteedAverage,
    /// Predicted service in the high-priority class.
    PredictedHigh,
    /// Predicted service in the low-priority class.
    PredictedLow,
}

impl FlowKind {
    /// Display label matching the paper's terminology.
    pub fn label(self) -> &'static str {
        match self {
            FlowKind::GuaranteedPeak => "Guaranteed-Peak",
            FlowKind::GuaranteedAverage => "Guaranteed-Average",
            FlowKind::PredictedHigh => "Predicted-High",
            FlowKind::PredictedLow => "Predicted-Low",
        }
    }

    /// `true` for the two guaranteed kinds.
    pub fn is_guaranteed(self) -> bool {
        matches!(self, FlowKind::GuaranteedPeak | FlowKind::GuaranteedAverage)
    }

    /// The kind carrying the given printed label (the inverse of
    /// [`label`](FlowKind::label), used by the Table-3 wire decoder).
    pub fn from_label(label: &str) -> Option<FlowKind> {
        [
            FlowKind::GuaranteedPeak,
            FlowKind::GuaranteedAverage,
            FlowKind::PredictedHigh,
            FlowKind::PredictedLow,
        ]
        .into_iter()
        .find(|k| k.label() == label)
    }
}

/// Where one real-time flow enters the chain and how many links it crosses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowPlacement {
    /// Table-3 class.
    pub kind: FlowKind,
    /// Index (0-based) of the first inter-switch link the flow crosses.
    pub first_link: usize,
    /// Number of consecutive inter-switch links crossed (the paper's "path
    /// length").
    pub hops: usize,
}

impl FlowPlacement {
    /// The link indices this flow crosses.
    pub fn link_indices(&self) -> std::ops::Range<usize> {
        self.first_link..self.first_link + self.hops
    }
}

/// The fixed placement of the 22 real-time flows (see DESIGN.md §6).
pub fn placement() -> Vec<FlowPlacement> {
    use FlowKind::*;
    let mut flows = Vec::with_capacity(NUM_FLOWS);
    let mut push = |kind, first_link, hops| {
        flows.push(FlowPlacement {
            kind,
            first_link,
            hops,
        })
    };
    // Guaranteed-Peak: one 4-hop flow and two 2-hop flows covering each link
    // exactly twice in total.
    push(GuaranteedPeak, 0, 4);
    push(GuaranteedPeak, 0, 2);
    push(GuaranteedPeak, 2, 2);
    // Guaranteed-Average: a 3-hop and a 1-hop flow covering each link once.
    push(GuaranteedAverage, 0, 3);
    push(GuaranteedAverage, 3, 1);
    // Predicted-High: a 4-hop flow, two 2-hop flows and one 1-hop flow per
    // link — three per link.
    push(PredictedHigh, 0, 4);
    push(PredictedHigh, 0, 2);
    push(PredictedHigh, 2, 2);
    push(PredictedHigh, 0, 1);
    push(PredictedHigh, 1, 1);
    push(PredictedHigh, 2, 1);
    push(PredictedHigh, 3, 1);
    // Predicted-Low: three 3-hop flows and seven 1-hop flows — four per link.
    push(PredictedLow, 0, 3);
    push(PredictedLow, 0, 3);
    push(PredictedLow, 1, 3);
    push(PredictedLow, 0, 1);
    push(PredictedLow, 0, 1);
    push(PredictedLow, 1, 1);
    push(PredictedLow, 2, 1);
    push(PredictedLow, 3, 1);
    push(PredictedLow, 3, 1);
    push(PredictedLow, 3, 1);
    flows
}

/// Placement of the two datagram TCP connections of Table 3 (first link
/// index, hops): one on L1–L2 and one on L3–L4, so every link carries
/// exactly one datagram connection.
pub fn tcp_placement() -> Vec<(usize, usize)> {
    vec![(0, 2), (2, 2)]
}

/// The built Figure-1 network skeleton: five switches, four forward links
/// and four reverse links (the reverse direction is idle except for TCP
/// acknowledgements).
#[derive(Debug, Clone)]
pub struct Fig1Network {
    /// The topology.
    pub topology: Topology,
    /// The five switches S-1 … S-5.
    pub nodes: Vec<NodeId>,
    /// The four forward inter-switch links (L1 … L4).
    pub links: Vec<LinkId>,
    /// The four reverse links (L4' … L1' by position: `reverse[i]` runs from
    /// `nodes[i+1]` back to `nodes[i]`).
    pub reverse_links: Vec<LinkId>,
}

impl Fig1Network {
    /// The scenario link profile Figure 1 uses (the Appendix parameters).
    pub fn link_profile(cfg: &PaperConfig) -> LinkProfile {
        LinkProfile {
            rate_bps: cfg.link_rate_bps,
            propagation: SimTime::ZERO,
            buffer_packets: cfg.buffer_packets,
        }
    }

    /// Build the Figure-1 topology with the configured link parameters —
    /// a duplex five-switch chain, via the scenario preset.
    pub fn build(cfg: &PaperConfig) -> Self {
        let built = TopologySpec::chain_duplex(5)
            .build(&Self::link_profile(cfg))
            .expect("the Figure-1 chain is a valid preset");
        Fig1Network {
            topology: built.topology,
            nodes: built.nodes,
            links: built.forward,
            reverse_links: built.reverse,
        }
    }

    /// The forward route (list of links) for a placement.
    pub fn route_for(&self, p: &FlowPlacement) -> Vec<LinkId> {
        p.link_indices().map(|i| self.links[i]).collect()
    }

    /// The forward route for a `(first_link, hops)` pair.
    pub fn route_span(&self, first_link: usize, hops: usize) -> Vec<LinkId> {
        (first_link..first_link + hops)
            .map(|i| self.links[i])
            .collect()
    }

    /// The reverse route matching a forward `(first_link, hops)` span (used
    /// by TCP acknowledgements).
    pub fn reverse_route_span(&self, first_link: usize, hops: usize) -> Vec<LinkId> {
        (first_link..first_link + hops)
            .rev()
            .map(|i| self.reverse_links[i])
            .collect()
    }
}

/// Census of the placement: per-link flow counts by kind, used by the tests
/// and printed by the `fig1` binary.
pub fn per_link_census(
    flows: &[FlowPlacement],
) -> Vec<std::collections::BTreeMap<FlowKind, usize>> {
    let mut census = vec![std::collections::BTreeMap::new(); NUM_LINKS];
    for f in flows {
        for l in f.link_indices() {
            *census[l].entry(f.kind).or_insert(0) += 1;
        }
    }
    census
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drift guard for the wire decoder: `from_label` must invert
    /// `label` for every kind, or distributed Table-3 runs would poison
    /// rows of a newly added kind at decode.
    #[test]
    fn from_label_inverts_label_for_every_kind() {
        for kind in [
            FlowKind::GuaranteedPeak,
            FlowKind::GuaranteedAverage,
            FlowKind::PredictedHigh,
            FlowKind::PredictedLow,
        ] {
            assert_eq!(FlowKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(FlowKind::from_label("Best-Effort-Maybe"), None);
    }

    #[test]
    fn path_length_census_matches_the_appendix() {
        let flows = placement();
        assert_eq!(flows.len(), NUM_FLOWS);
        let count = |h| flows.iter().filter(|f| f.hops == h).count();
        assert_eq!(count(1), 12, "12 flows of path length one");
        assert_eq!(count(2), 4, "4 flows of path length two");
        assert_eq!(count(3), 4, "4 flows of path length three");
        assert_eq!(count(4), 2, "2 flows of path length four");
    }

    #[test]
    fn every_link_carries_ten_flows() {
        let census = per_link_census(&placement());
        for (i, link) in census.iter().enumerate() {
            let total: usize = link.values().sum();
            assert_eq!(total, FLOWS_PER_LINK, "link {i} carries {total} flows");
        }
    }

    #[test]
    fn per_link_class_mix_matches_section_7() {
        // "it consists of one datagram connection and 10 real-time flows:
        // 2 Guaranteed-Peak, 1 Guaranteed-Average, 3 Predicted-High, and
        // 4 Predicted-Low."
        let census = per_link_census(&placement());
        for (i, link) in census.iter().enumerate() {
            assert_eq!(link.get(&FlowKind::GuaranteedPeak), Some(&2), "link {i}");
            assert_eq!(link.get(&FlowKind::GuaranteedAverage), Some(&1), "link {i}");
            assert_eq!(link.get(&FlowKind::PredictedHigh), Some(&3), "link {i}");
            assert_eq!(link.get(&FlowKind::PredictedLow), Some(&4), "link {i}");
        }
    }

    #[test]
    fn class_totals_match_section_7() {
        let flows = placement();
        let count = |k| flows.iter().filter(|f| f.kind == k).count();
        assert_eq!(count(FlowKind::GuaranteedPeak), 3);
        assert_eq!(count(FlowKind::GuaranteedAverage), 2);
        assert_eq!(count(FlowKind::PredictedHigh), 7);
        assert_eq!(count(FlowKind::PredictedLow), 10);
    }

    #[test]
    fn placements_stay_inside_the_chain() {
        for f in placement() {
            assert!(
                f.first_link + f.hops <= NUM_LINKS,
                "{f:?} runs off the chain"
            );
            assert!(f.hops >= 1);
        }
    }

    #[test]
    fn tcp_connections_cover_each_link_once() {
        let mut per_link = [0usize; NUM_LINKS];
        for (first, hops) in tcp_placement() {
            for count in per_link.iter_mut().skip(first).take(hops) {
                *count += 1;
            }
        }
        assert_eq!(per_link, [1, 1, 1, 1]);
    }

    #[test]
    fn built_topology_matches_figure_1() {
        let cfg = PaperConfig::paper();
        let net = Fig1Network::build(&cfg);
        assert_eq!(net.nodes.len(), 5);
        assert_eq!(net.links.len(), 4);
        assert_eq!(net.reverse_links.len(), 4);
        for (i, l) in net.links.iter().enumerate() {
            let p = net.topology.link(*l);
            assert_eq!(p.from, net.nodes[i]);
            assert_eq!(p.to, net.nodes[i + 1]);
            assert_eq!(p.rate_bps, 1_000_000.0);
            assert_eq!(p.buffer_packets, 200);
        }
        // Routes derived from placements are valid contiguous paths.
        for f in placement() {
            assert!(net.topology.validate_route(&net.route_for(&f)));
        }
        // Reverse routes are valid too.
        for (first, hops) in tcp_placement() {
            assert!(net
                .topology
                .validate_route(&net.reverse_route_span(first, hops)));
        }
    }

    #[test]
    fn kind_labels() {
        assert_eq!(FlowKind::GuaranteedPeak.label(), "Guaranteed-Peak");
        assert!(FlowKind::GuaranteedPeak.is_guaranteed());
        assert!(!FlowKind::PredictedLow.is_guaranteed());
    }

    #[test]
    fn offered_load_is_about_83_percent_per_link() {
        // 10 flows per link at ~0.98·85 pkt/s each over a 1000 pkt/s link.
        let cfg = PaperConfig::paper();
        let per_link_pps = FLOWS_PER_LINK as f64 * 0.98 * cfg.avg_rate_pps;
        let util = per_link_pps / cfg.link_rate_pps();
        assert!((util - 0.835).abs() < 0.01, "offered load {util}");
    }
}
