//! Flow churn under dynamic signaling: the Sections 8–9 service interface
//! exercised end to end.
//!
//! Flows arrive as a Poisson process and hold their reservation for an
//! exponentially distributed time, on the Appendix's five-switch chain
//! (Figure 1).  Every inter-switch link runs the unified scheduler of
//! Section 7 under a measurement-based admission controller (Section 9)
//! that `ispn-net` feeds live; each setup traverses its route hop by hop
//! through `ispn-signal`, so a refusal anywhere rolls partial reservations
//! back.  The experiment reports the classic connection-admission-control
//! quantities: blocking probability versus offered load, carried
//! utilization, and whether any admitted predicted flow ever exceeded the
//! a-priori bound (the sum of its per-hop class targets Dᵢ) it was sold.

use std::collections::HashMap;

use ispn_core::admission::{AdmissionConfig, AdmissionController};
use ispn_core::{FlowId, TokenBucketSpec};
use ispn_net::{FlowConfig, Network, PoliceAction};
use ispn_sched::{Averaging, Unified};
use ispn_signal::{Lease, LeasedSource, SignalEvent, Signaling};
use ispn_sim::{EventQueue, Pcg64, SimTime};
use ispn_traffic::{OnOffConfig, OnOffSource};

use crate::config::PaperConfig;
use crate::extensions::admission::{HIGH_TARGET_PKT, LOW_TARGET_PKT};
use crate::fig1::{Fig1Network, NUM_LINKS};

/// Parameters of one churn run.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// The Appendix constants (link speed, packet size, source model, seed).
    pub paper: PaperConfig,
    /// Poisson flow-arrival rate λ (new setup requests per second).
    pub arrivals_per_sec: f64,
    /// Mean exponential holding time 1/μ of an admitted flow, seconds.
    pub mean_holding_secs: f64,
    /// Fraction of requests asking for guaranteed service (clock rate = the
    /// source's peak rate, the paper's Guaranteed-Peak configuration); the
    /// rest ask for predicted service, split evenly between the two
    /// priority classes.
    pub guaranteed_fraction: f64,
}

impl ChurnConfig {
    /// A churn configuration with the given offered dynamics.
    pub fn new(paper: PaperConfig, arrivals_per_sec: f64, mean_holding_secs: f64) -> Self {
        assert!(arrivals_per_sec > 0.0);
        assert!(mean_holding_secs > 0.0);
        ChurnConfig {
            paper,
            arrivals_per_sec,
            mean_holding_secs,
            guaranteed_fraction: 0.25,
        }
    }

    /// Offered load in erlangs: the mean number of flows that would be in
    /// the system if none were blocked (λ/μ).
    pub fn offered_erlangs(&self) -> f64 {
        self.arrivals_per_sec * self.mean_holding_secs
    }
}

/// What one churn run produced.
#[derive(Debug, Clone)]
pub struct ChurnOutcome {
    /// Offered load in erlangs (λ/μ).
    pub offered_erlangs: f64,
    /// Setup requests that completed (accepted + rejected).
    pub offered: usize,
    /// Setups admitted on every hop.
    pub accepted: usize,
    /// Setups refused by some hop.
    pub rejected: usize,
    /// Chronological accept/reject sequence (for determinism checks).
    pub decisions: Vec<bool>,
    /// Mean utilization over the four inter-switch links.
    pub mean_utilization: f64,
    /// Utilization of the busiest link.
    pub worst_utilization: f64,
    /// Admitted predicted flows whose measured maximum queueing delay
    /// exceeded the advertised bound (Σ per-hop Dᵢ along their path).
    pub violations: usize,
    /// The largest fraction of its advertised bound any admitted predicted
    /// flow consumed (1.0 = exactly at the bound).
    pub worst_bound_fraction: f64,
    /// Guaranteed bandwidth still reserved on any link after every flow was
    /// torn down and the control plane drained — must be zero if rejected
    /// and released setups leave no residue.
    pub residual_reserved_bps: f64,
}

impl ChurnOutcome {
    /// Fraction of setup requests refused.
    pub fn blocking_probability(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.rejected as f64 / self.offered as f64
        }
    }
}

enum DriverEvent {
    Arrival,
    Departure { flow: FlowId },
}

struct AdmittedFlow {
    /// `Some(priority)` for predicted flows, `None` for guaranteed.
    priority: Option<u8>,
    hops: usize,
    lease: Option<Lease>,
}

/// The per-hop delay target of a predicted priority class, in packet times.
fn class_target_pkt(priority: u8) -> f64 {
    if priority == 0 {
        HIGH_TARGET_PKT
    } else {
        LOW_TARGET_PKT
    }
}

/// Run one churn scenario.
pub fn run(cfg: &ChurnConfig) -> ChurnOutcome {
    let paper = &cfg.paper;
    let fig1 = Fig1Network::build(paper);
    let mut net = Network::new(fig1.topology.clone());
    let pt = paper.packet_time();
    let targets = vec![pt.mul_f64(HIGH_TARGET_PKT), pt.mul_f64(LOW_TARGET_PKT)];
    for &link in &fig1.links {
        net.set_discipline(
            link,
            Box::new(Unified::new(paper.link_rate_bps, 2, Averaging::RunningMean)),
        );
        let mut controller = AdmissionController::new(
            AdmissionConfig::new(paper.link_rate_bps, 0.9, targets.clone()),
            10.0,
        );
        // Under churn many flows can be admitted within one measurement
        // window, before any of them shows up in ν̂; a stiffer safety factor
        // keeps the "consistently conservative estimate" property (Section
        // 9) honest in that regime so admitted flows stay within bound.
        controller.set_util_safety_factor(1.6);
        net.enable_admission(link, controller, SimTime::SECOND);
    }

    let mut sig = Signaling::default();
    let mut rng = Pcg64::new(paper.seed ^ 0xC4E2_2024);
    let mut driver: EventQueue<DriverEvent> = EventQueue::new();
    let arrival_gap =
        |rng: &mut Pcg64| SimTime::from_secs_f64(rng.exponential(1.0 / cfg.arrivals_per_sec));
    driver.push(arrival_gap(&mut rng), DriverEvent::Arrival);

    // A client asking for the tight (30-packet-time) class must declare a
    // burst that can fit inside that headroom — the Section-9 criterion
    // rejects b ≥ Dⱼ·(μ − ν̂ − r) outright, and the paper's 50-packet bucket
    // is bigger than 30 packet-times of line rate.  Low-priority clients
    // declare the Appendix's (A, 50).
    let bucket_for = |priority: u8| {
        let depth_pkts = if priority == 0 { 20.0 } else { 50.0 };
        TokenBucketSpec::per_packets(paper.avg_rate_pps, depth_pkts, paper.packet_bits)
    };
    let peak_rate_bps = 2.0 * paper.avg_rate_pps * paper.packet_bits as f64;
    let mut admitted: HashMap<FlowId, AdmittedFlow> = HashMap::new();
    let mut requested: HashMap<FlowId, (Option<u8>, usize)> = HashMap::new();
    let mut source_seq: u32 = 0;

    // Step the data plane, the control plane and the churn driver in
    // 10 ms slices so admitted sources come alive promptly after their
    // confirmation and measurements stay current.
    let slice = SimTime::from_millis(10);
    let mut now = SimTime::ZERO;
    while now < paper.duration {
        // Handle every driver event that is due.
        while driver.peek_time().is_some_and(|t| t <= now) {
            let (_, ev) = driver.pop().expect("peeked driver event");
            match ev {
                DriverEvent::Arrival => {
                    let first = rng.next_below(NUM_LINKS as u64) as usize;
                    let hops = 1 + rng.next_below((NUM_LINKS - first) as u64) as usize;
                    let route = fig1.route_span(first, hops);
                    let (config, priority) = if rng.bernoulli(cfg.guaranteed_fraction) {
                        (FlowConfig::guaranteed(route, peak_rate_bps), None)
                    } else {
                        let priority = u8::from(rng.bernoulli(0.5));
                        let bound = pt.mul_f64(class_target_pkt(priority) * hops as f64);
                        (
                            FlowConfig::predicted(
                                route,
                                priority,
                                bucket_for(priority),
                                bound,
                                0.001,
                                PoliceAction::Drop,
                            ),
                            Some(priority),
                        )
                    };
                    let (_req, flow) = sig.submit(&mut net, config);
                    requested.insert(flow, (priority, hops));
                    driver.push(now + arrival_gap(&mut rng), DriverEvent::Arrival);
                }
                DriverEvent::Departure { flow } => {
                    if let Some(record) = admitted.get_mut(&flow) {
                        if let Some(lease) = record.lease.take() {
                            lease.revoke();
                            sig.teardown(&mut net, flow);
                        }
                    }
                }
            }
        }
        // Advance data and control plane to the next point of interest.
        let next_driver = driver.peek_time().unwrap_or(SimTime::MAX);
        debug_assert!(next_driver > now, "due driver events were just drained");
        let target = (now + slice).min(paper.duration).min(next_driver);
        for event in sig.process_until(&mut net, target) {
            match event {
                SignalEvent::Accepted { flow, at, .. } => {
                    let (priority, hops) = requested.remove(&flow).expect("known request");
                    let source = OnOffSource::new(
                        flow,
                        OnOffConfig::paper(paper.avg_rate_pps, paper.flow_seed(source_seq)),
                    );
                    source_seq += 1;
                    let (leased, lease) = LeasedSource::new(source);
                    net.add_agent(Box::new(leased));
                    let hold = SimTime::from_secs_f64(rng.exponential(cfg.mean_holding_secs));
                    driver.push(at + hold, DriverEvent::Departure { flow });
                    admitted.insert(
                        flow,
                        AdmittedFlow {
                            priority,
                            hops,
                            lease: Some(lease),
                        },
                    );
                }
                SignalEvent::Rejected { flow, .. } => {
                    requested.remove(&flow);
                }
                _ => {}
            }
        }
        now = target;
    }

    // Measure bound compliance over the flows' lifetimes before draining.
    let pt_secs = pt.as_secs_f64();
    let mut violations = 0;
    let mut worst_bound_fraction: f64 = 0.0;
    for (&flow, record) in &admitted {
        let Some(priority) = record.priority else {
            continue;
        };
        let report = net.monitor_mut().flow_report(flow);
        if report.delivered == 0 {
            continue;
        }
        let bound_secs = class_target_pkt(priority) * record.hops as f64 * pt_secs;
        let fraction = report.max_delay / bound_secs;
        worst_bound_fraction = worst_bound_fraction.max(fraction);
        if fraction > 1.0 {
            violations += 1;
        }
    }

    let mut mean_utilization = 0.0;
    let mut worst_utilization: f64 = 0.0;
    for &link in &fig1.links {
        let u = net.monitor().link_report(link.index()).utilization;
        mean_utilization += u / NUM_LINKS as f64;
        worst_utilization = worst_utilization.max(u);
    }

    // Drain: tear every remaining flow down, let the control plane finish,
    // and verify that no reservation survives anywhere.
    for (&flow, record) in &mut admitted {
        if let Some(lease) = record.lease.take() {
            lease.revoke();
            sig.teardown(&mut net, flow);
        }
    }
    let drain_until = paper.duration + SimTime::from_secs(1);
    sig.process_until(&mut net, drain_until);
    let residual_reserved_bps = fig1
        .links
        .iter()
        .map(|&l| {
            net.admission(l)
                .expect("admission enabled")
                .reserved_guaranteed_bps()
        })
        .sum();

    let decisions: Vec<bool> = sig.decision_log().iter().map(|&(_, a)| a).collect();
    let accepted = decisions.iter().filter(|&&a| a).count();
    let rejected = decisions.len() - accepted;
    ChurnOutcome {
        offered_erlangs: cfg.offered_erlangs(),
        offered: decisions.len(),
        accepted,
        rejected,
        decisions,
        mean_utilization,
        worst_utilization,
        violations,
        worst_bound_fraction,
        residual_reserved_bps,
    }
}

/// Run the experiment at several offered loads (same holding time, rising
/// arrival rate), the sweep the `churn` binary prints.
pub fn sweep(
    paper: &PaperConfig,
    arrival_rates: &[f64],
    mean_holding_secs: f64,
) -> Vec<ChurnOutcome> {
    arrival_rates
        .iter()
        .map(|&lambda| run(&ChurnConfig::new(paper.clone(), lambda, mean_holding_secs)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast(arrivals_per_sec: f64) -> ChurnConfig {
        ChurnConfig::new(PaperConfig::fast(), arrivals_per_sec, 15.0)
    }

    #[test]
    fn churn_offers_accepts_and_rejects() {
        let out = run(&fast(1.0));
        assert!(out.offered > 10, "{out:?}");
        assert_eq!(out.offered, out.accepted + out.rejected);
        assert!(out.accepted > 0, "{out:?}");
        // 15 erlangs of mixed flows against 4 links × 0.9 Mbit/s must turn
        // some requests away.
        assert!(out.rejected > 0, "{out:?}");
        assert_eq!(out.decisions.len(), out.offered);
    }

    #[test]
    fn no_residual_reservations_after_drain() {
        let out = run(&fast(0.8));
        assert_eq!(out.residual_reserved_bps, 0.0, "{out:?}");
    }

    #[test]
    fn admitted_predicted_flows_meet_their_bounds() {
        let out = run(&fast(0.6));
        assert_eq!(out.violations, 0, "{out:?}");
        assert!(out.worst_bound_fraction < 1.0, "{out:?}");
    }

    #[test]
    fn same_seed_same_decision_sequence() {
        let a = run(&fast(1.0));
        let b = run(&fast(1.0));
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.accepted, b.accepted);
        assert!((a.mean_utilization - b.mean_utilization).abs() < 1e-12);
    }

    #[test]
    fn blocking_rises_with_offered_load() {
        let low = run(&fast(0.3));
        let high = run(&fast(2.0));
        assert!(
            low.blocking_probability() <= high.blocking_probability(),
            "low {low:?} vs high {high:?}"
        );
        assert!(high.blocking_probability() > 0.0);
    }
}
