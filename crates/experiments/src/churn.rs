//! Flow churn under dynamic signaling: the Sections 8–9 service interface
//! exercised end to end.
//!
//! Flows arrive as a Poisson process and hold their reservation for an
//! exponentially distributed time, on the Appendix's five-switch chain
//! (Figure 1).  Every inter-switch link runs the unified scheduler of
//! Section 7 under a measurement-based admission controller (Section 9)
//! that `ispn-net` feeds live; each setup traverses its route hop by hop
//! through `ispn-signal`, so a refusal anywhere rolls partial reservations
//! back.  The experiment reports the classic connection-admission-control
//! quantities: blocking probability versus offered load, carried
//! utilization, and whether any admitted predicted flow ever exceeded the
//! a-priori bound (the sum of its per-hop class targets Dᵢ) it was sold.
//!
//! The driver is built on the `ispn-scenario` [`Sim`] facade: arrivals and
//! departures are scheduled actions, admitted flows get their source the
//! instant the confirmation lands (the facade delivers signal events at
//! their exact event time — no more manual 10 ms polling slices), and the
//! whole run is a pure function of the seed regardless of how coarsely the
//! caller steps the simulation.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use ispn_core::{FlowId, TokenBucketSpec};
use ispn_net::{FlowConfig, LinkId, PoliceAction};
use ispn_scenario::{
    AdmissionSpec, DisciplineMatrix, DisciplineSpec, ScenarioBuilder, Sim, TopologySpec,
};
use ispn_sched::Averaging;
use ispn_signal::{Lease, LeasedSource, SignalEvent};
use ispn_sim::{Pcg64, SimTime};
use ispn_traffic::{OnOffConfig, OnOffSource};

use crate::config::PaperConfig;
use crate::extensions::admission::{HIGH_TARGET_PKT, LOW_TARGET_PKT};
use crate::fig1::{Fig1Network, NUM_LINKS};

/// Parameters of one churn run.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// The Appendix constants (link speed, packet size, source model, seed).
    pub paper: PaperConfig,
    /// Poisson flow-arrival rate λ (new setup requests per second).
    pub arrivals_per_sec: f64,
    /// Mean exponential holding time 1/μ of an admitted flow, seconds.
    pub mean_holding_secs: f64,
    /// Fraction of requests asking for guaranteed service (clock rate = the
    /// source's peak rate, the paper's Guaranteed-Peak configuration); the
    /// rest ask for predicted service, split evenly between the two
    /// priority classes.
    pub guaranteed_fraction: f64,
}

impl ChurnConfig {
    /// A churn configuration with the given offered dynamics.
    pub fn new(paper: PaperConfig, arrivals_per_sec: f64, mean_holding_secs: f64) -> Self {
        assert!(arrivals_per_sec > 0.0);
        assert!(mean_holding_secs > 0.0);
        ChurnConfig {
            paper,
            arrivals_per_sec,
            mean_holding_secs,
            guaranteed_fraction: 0.25,
        }
    }

    /// Offered load in erlangs: the mean number of flows that would be in
    /// the system if none were blocked (λ/μ).
    pub fn offered_erlangs(&self) -> f64 {
        self.arrivals_per_sec * self.mean_holding_secs
    }
}

/// What one churn run produced.
#[derive(Debug, Clone)]
pub struct ChurnOutcome {
    /// Offered load in erlangs (λ/μ).
    pub offered_erlangs: f64,
    /// Setup requests that completed (accepted + rejected).
    pub offered: usize,
    /// Setups admitted on every hop.
    pub accepted: usize,
    /// Setups refused by some hop.
    pub rejected: usize,
    /// Chronological accept/reject sequence (for determinism checks).
    pub decisions: Vec<bool>,
    /// Mean utilization over the four inter-switch links.
    pub mean_utilization: f64,
    /// Utilization of the busiest link.
    pub worst_utilization: f64,
    /// Admitted predicted flows whose measured maximum queueing delay
    /// exceeded the advertised bound (Σ per-hop Dᵢ along their path).
    pub violations: usize,
    /// The largest fraction of its advertised bound any admitted predicted
    /// flow consumed (1.0 = exactly at the bound).
    pub worst_bound_fraction: f64,
    /// Guaranteed bandwidth still reserved on any link after every flow was
    /// torn down and the control plane drained — must be zero if rejected
    /// and released setups leave no residue.
    pub residual_reserved_bps: f64,
}

impl ChurnOutcome {
    /// Fraction of setup requests refused.
    pub fn blocking_probability(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.rejected as f64 / self.offered as f64
        }
    }
}

struct AdmittedFlow {
    /// `Some(priority)` for predicted flows, `None` for guaranteed.
    priority: Option<u8>,
    hops: usize,
    lease: Option<Lease>,
}

/// Shared driver state threaded through the scheduled actions and the
/// signal-event handler.
struct ChurnState {
    rng: Pcg64,
    admitted: HashMap<FlowId, AdmittedFlow>,
    requested: HashMap<FlowId, (Option<u8>, usize)>,
    source_seq: u32,
    /// Set while draining: in-flight completions must no longer spawn
    /// sources or departures.
    draining: bool,
}

/// The per-hop delay target of a predicted priority class, in packet times.
fn class_target_pkt(priority: u8) -> f64 {
    if priority == 0 {
        HIGH_TARGET_PKT
    } else {
        LOW_TARGET_PKT
    }
}

/// The declared token bucket of a predicted churn request: a client asking
/// for the tight class must declare a burst that fits inside the headroom
/// the Section-9 criterion checks; low-priority clients declare the
/// Appendix's `(A, 50)`.
fn bucket_for(paper: &PaperConfig, priority: u8) -> TokenBucketSpec {
    let depth_pkts = if priority == 0 { 20.0 } else { 50.0 };
    TokenBucketSpec::per_packets(paper.avg_rate_pps, depth_pkts, paper.packet_bits)
}

/// Build the churn scenario: the Figure-1 duplex chain with the unified
/// scheduler and a stiffened Section-9 admission controller on every
/// forward link.
fn build_sim(paper: &PaperConfig) -> Sim {
    let pt = paper.packet_time();
    let forward: Vec<LinkId> = (0..NUM_LINKS).map(LinkId).collect();
    // Under churn many flows can be admitted within one measurement window,
    // before any of them shows up in ν̂; a stiffer safety factor keeps the
    // "consistently conservative estimate" property (Section 9) honest in
    // that regime so admitted flows stay within bound.
    let admission = AdmissionSpec {
        realtime_quota: 0.9,
        class_targets: vec![pt.mul_f64(HIGH_TARGET_PKT), pt.mul_f64(LOW_TARGET_PKT)],
        measurement_window_secs: 10.0,
        util_safety_factor: Some(1.6),
        sample_interval: SimTime::SECOND,
    };
    ScenarioBuilder::new(TopologySpec::chain_duplex(5))
        .link_profile(Fig1Network::link_profile(paper))
        .disciplines(DisciplineMatrix::default().with_links(
            &forward,
            DisciplineSpec::Unified {
                priority_classes: 2,
                averaging: Averaging::RunningMean,
            },
        ))
        .admission_on(forward, admission)
        .build()
        .expect("the churn scenario is valid")
}

/// The self-rescheduling arrival action.
fn arrival_action(state: Rc<RefCell<ChurnState>>, cfg: ChurnConfig) -> impl FnOnce(&mut Sim) {
    move |sim: &mut Sim| {
        let paper = &cfg.paper;
        let pt = paper.packet_time();
        let mut s = state.borrow_mut();
        let first = s.rng.next_below(NUM_LINKS as u64) as usize;
        let hops = 1 + s.rng.next_below((NUM_LINKS - first) as u64) as usize;
        let route = sim
            .built()
            .span(first, hops)
            .expect("arrival spans stay inside the chain");
        let (config, priority) = if s.rng.bernoulli(cfg.guaranteed_fraction) {
            let peak_rate_bps = 2.0 * paper.avg_rate_pps * paper.packet_bits as f64;
            (FlowConfig::guaranteed(route, peak_rate_bps), None)
        } else {
            let priority = u8::from(s.rng.bernoulli(0.5));
            let bound = pt.mul_f64(class_target_pkt(priority) * hops as f64);
            (
                FlowConfig::predicted(
                    route,
                    priority,
                    bucket_for(paper, priority),
                    bound,
                    0.001,
                    PoliceAction::Drop,
                ),
                Some(priority),
            )
        };
        let gap = SimTime::from_secs_f64(s.rng.exponential(1.0 / cfg.arrivals_per_sec));
        drop(s);
        let (_req, flow) = sim.submit(config);
        state.borrow_mut().requested.insert(flow, (priority, hops));
        let next = sim.now() + gap;
        sim.schedule_at(next, arrival_action(state.clone(), cfg));
    }
}

/// The departure action of one admitted flow.
fn departure_action(state: Rc<RefCell<ChurnState>>, flow: FlowId) -> impl FnOnce(&mut Sim) {
    move |sim: &mut Sim| {
        let lease = state
            .borrow_mut()
            .admitted
            .get_mut(&flow)
            .and_then(|record| record.lease.take());
        if let Some(lease) = lease {
            lease.revoke();
            sim.teardown(flow);
        }
    }
}

/// Run one churn scenario.
pub fn run(cfg: &ChurnConfig) -> ChurnOutcome {
    let paper = cfg.paper.clone();
    let mut sim = build_sim(&paper);
    let state = Rc::new(RefCell::new(ChurnState {
        rng: Pcg64::new(paper.seed ^ 0xC4E2_2024),
        admitted: HashMap::new(),
        requested: HashMap::new(),
        source_seq: 0,
        draining: false,
    }));

    // Admitted flows come alive the instant their confirmation lands: the
    // handler runs at the exact event time, attaches a leased source and
    // schedules the departure.
    let handler_state = state.clone();
    let handler_paper = paper.clone();
    let mean_holding = cfg.mean_holding_secs;
    sim.on_signal(move |event, sim| {
        if handler_state.borrow().draining {
            return;
        }
        match event {
            SignalEvent::Accepted { flow, at, .. } => {
                let mut s = handler_state.borrow_mut();
                let (priority, hops) = s.requested.remove(flow).expect("known request");
                let source = OnOffSource::new(
                    *flow,
                    OnOffConfig::paper(
                        handler_paper.avg_rate_pps,
                        handler_paper.flow_seed(s.source_seq),
                    ),
                );
                s.source_seq += 1;
                let (leased, lease) = LeasedSource::new(source);
                let hold = SimTime::from_secs_f64(s.rng.exponential(mean_holding));
                s.admitted.insert(
                    *flow,
                    AdmittedFlow {
                        priority,
                        hops,
                        lease: Some(lease),
                    },
                );
                drop(s);
                sim.network_mut().add_agent(Box::new(leased));
                sim.schedule_at(*at + hold, departure_action(handler_state.clone(), *flow));
            }
            SignalEvent::Rejected { flow, .. } => {
                handler_state.borrow_mut().requested.remove(flow);
            }
            _ => {}
        }
    });

    // First arrival, then run the whole horizon in one call — the facade
    // interleaves arrivals, departures, control messages and the data plane
    // in global event-time order.
    {
        let mut s = state.borrow_mut();
        let gap = SimTime::from_secs_f64(s.rng.exponential(1.0 / cfg.arrivals_per_sec));
        drop(s);
        sim.schedule_at(gap, arrival_action(state.clone(), cfg.clone()));
    }
    sim.run_until(paper.duration);

    // Measure bound compliance over the flows' lifetimes before draining.
    let pt_secs = paper.packet_time().as_secs_f64();
    let mut violations = 0;
    let mut worst_bound_fraction: f64 = 0.0;
    {
        let s = state.borrow();
        let net = sim.network_mut();
        for (&flow, record) in &s.admitted {
            let Some(priority) = record.priority else {
                continue;
            };
            let report = net.monitor_mut().flow_report(flow);
            if report.delivered == 0 {
                continue;
            }
            let bound_secs = class_target_pkt(priority) * record.hops as f64 * pt_secs;
            let fraction = report.max_delay / bound_secs;
            worst_bound_fraction = worst_bound_fraction.max(fraction);
            if fraction > 1.0 {
                violations += 1;
            }
        }
    }

    let forward: Vec<LinkId> = (0..NUM_LINKS).map(LinkId).collect();
    let mut mean_utilization = 0.0;
    let mut worst_utilization: f64 = 0.0;
    for &link in &forward {
        let u = sim
            .network()
            .monitor()
            .link_report(link.index())
            .utilization;
        mean_utilization += u / NUM_LINKS as f64;
        worst_utilization = worst_utilization.max(u);
    }

    // Drain: stop the arrival process, tear every remaining flow down, let
    // the control plane finish, and verify no reservation survives.
    state.borrow_mut().draining = true;
    sim.cancel_scheduled();
    let to_tear: Vec<(FlowId, Lease)> = {
        let mut s = state.borrow_mut();
        let mut pairs: Vec<(FlowId, Lease)> = s
            .admitted
            .iter_mut()
            .filter_map(|(&flow, record)| record.lease.take().map(|l| (flow, l)))
            .collect();
        // HashMap iteration order is not deterministic across runs of the
        // same binary only if the hasher is randomized; FlowId teardown
        // order does not affect the outcome, but sort anyway so the drain
        // is reproducible by construction.
        pairs.sort_by_key(|(flow, _)| *flow);
        pairs
    };
    for (flow, lease) in to_tear {
        lease.revoke();
        sim.teardown(flow);
    }
    sim.run_until(paper.duration + SimTime::from_secs(1));
    let residual_reserved_bps = forward
        .iter()
        .map(|&l| {
            sim.network()
                .admission(l)
                .expect("admission enabled")
                .reserved_guaranteed_bps()
        })
        .sum();

    let decisions: Vec<bool> = sim
        .signaling()
        .decision_log()
        .iter()
        .map(|&(_, a)| a)
        .collect();
    let accepted = decisions.iter().filter(|&&a| a).count();
    let rejected = decisions.len() - accepted;
    ChurnOutcome {
        offered_erlangs: cfg.offered_erlangs(),
        offered: decisions.len(),
        accepted,
        rejected,
        decisions,
        mean_utilization,
        worst_utilization,
        violations,
        worst_bound_fraction,
        residual_reserved_bps,
    }
}

/// Run the experiment at several offered loads (same holding time, rising
/// arrival rate), the sweep the `churn` binary prints.
pub fn sweep(
    paper: &PaperConfig,
    arrival_rates: &[f64],
    mean_holding_secs: f64,
) -> Vec<ChurnOutcome> {
    arrival_rates
        .iter()
        .map(|&lambda| run(&ChurnConfig::new(paper.clone(), lambda, mean_holding_secs)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast(arrivals_per_sec: f64) -> ChurnConfig {
        ChurnConfig::new(PaperConfig::fast(), arrivals_per_sec, 15.0)
    }

    #[test]
    fn churn_offers_accepts_and_rejects() {
        let out = run(&fast(1.0));
        assert!(out.offered > 10, "{out:?}");
        assert_eq!(out.offered, out.accepted + out.rejected);
        assert!(out.accepted > 0, "{out:?}");
        // 15 erlangs of mixed flows against 4 links × 0.9 Mbit/s must turn
        // some requests away.
        assert!(out.rejected > 0, "{out:?}");
        assert_eq!(out.decisions.len(), out.offered);
    }

    #[test]
    fn no_residual_reservations_after_drain() {
        let out = run(&fast(0.8));
        assert_eq!(out.residual_reserved_bps, 0.0, "{out:?}");
    }

    #[test]
    fn admitted_predicted_flows_meet_their_bounds() {
        let out = run(&fast(0.6));
        assert_eq!(out.violations, 0, "{out:?}");
        assert!(out.worst_bound_fraction < 1.0, "{out:?}");
    }

    #[test]
    fn same_seed_same_decision_sequence() {
        let a = run(&fast(1.0));
        let b = run(&fast(1.0));
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.accepted, b.accepted);
        assert!((a.mean_utilization - b.mean_utilization).abs() < 1e-12);
    }

    #[test]
    fn blocking_rises_with_offered_load() {
        let low = run(&fast(0.3));
        let high = run(&fast(2.0));
        assert!(
            low.blocking_probability() <= high.blocking_probability(),
            "low {low:?} vs high {high:?}"
        );
        assert!(high.blocking_probability() > 0.0);
    }
}
