//! Flow churn under dynamic signaling: the Sections 8–9 service interface
//! exercised end to end.
//!
//! Flows arrive as a Poisson process and hold their reservation for an
//! exponentially distributed time, on the Appendix's five-switch chain
//! (Figure 1).  Every inter-switch link runs the unified scheduler of
//! Section 7 under a measurement-based admission controller (Section 9)
//! that `ispn-net` feeds live; each setup traverses its route hop by hop
//! through `ispn-signal`, so a refusal anywhere rolls partial reservations
//! back.  The experiment reports the classic connection-admission-control
//! quantities: blocking probability versus offered load, carried
//! utilization, and whether any admitted predicted flow ever exceeded the
//! a-priori bound (the sum of its per-hop class targets Dᵢ) it was sold.
//!
//! The churn *process* itself is no longer driven here: it is the
//! first-class [`WorkloadSpec::Churn`] workload of `ispn-scenario`, so this
//! module only declares the scenario (topology, disciplines, admission,
//! churn parameters), runs it, and summarizes — and the offered-load sweep
//! is a [`ScenarioSet`] fanned across a [`SweepRunner`].  The promoted
//! driver reproduces the pre-promotion decision sequence bit-exactly
//! (pinned in `tests/tests/scenario.rs`).

use ispn_net::{LinkId, PoliceAction};
use ispn_scenario::{
    wire_f64, AdmissionSpec, ChurnClass, ChurnSourceSpec, ChurnWorkload, DisciplineMatrix,
    DisciplineSpec, JsonValue, MeasurementPlan, NullObserver, PointResult, RunTelemetry,
    ScenarioBuilder, ScenarioSet, Sim, SweepExec, SweepObserver, SweepReport, SweepRunner,
    TopologySpec, WireError, WireResult, WorkloadSpec,
};
use ispn_sched::Averaging;
use ispn_sim::SimTime;

use crate::config::PaperConfig;
use crate::extensions::admission::{HIGH_TARGET_PKT, LOW_TARGET_PKT};
use crate::fig1::{Fig1Network, NUM_LINKS};

/// Parameters of one churn run.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// The Appendix constants (link speed, packet size, source model, seed).
    pub paper: PaperConfig,
    /// Poisson flow-arrival rate λ (new setup requests per second).
    pub arrivals_per_sec: f64,
    /// Mean exponential holding time 1/μ of an admitted flow, seconds.
    pub mean_holding_secs: f64,
    /// Fraction of requests asking for guaranteed service (clock rate = the
    /// source's peak rate, the paper's Guaranteed-Peak configuration); the
    /// rest ask for predicted service, split evenly between the two
    /// priority classes.
    pub guaranteed_fraction: f64,
}

impl ChurnConfig {
    /// A churn configuration with the given offered dynamics.
    pub fn new(paper: PaperConfig, arrivals_per_sec: f64, mean_holding_secs: f64) -> Self {
        assert!(arrivals_per_sec > 0.0);
        assert!(mean_holding_secs > 0.0);
        ChurnConfig {
            paper,
            arrivals_per_sec,
            mean_holding_secs,
            guaranteed_fraction: 0.25,
        }
    }

    /// Offered load in erlangs: the mean number of flows that would be in
    /// the system if none were blocked (λ/μ).
    pub fn offered_erlangs(&self) -> f64 {
        self.arrivals_per_sec * self.mean_holding_secs
    }

    /// The declarative churn workload this configuration describes.
    pub fn workload(&self) -> ChurnWorkload {
        let paper = &self.paper;
        let pt = paper.packet_time();
        ChurnWorkload {
            arrivals_per_sec: self.arrivals_per_sec,
            mean_holding_secs: self.mean_holding_secs,
            // The driver's stream is derived from the base seed exactly as
            // the pre-promotion experiment derived it.
            seed: paper.seed ^ 0xC4E2_2024,
            guaranteed_fraction: self.guaranteed_fraction,
            guaranteed_rate_bps: 2.0 * paper.avg_rate_pps * paper.packet_bits as f64,
            classes: vec![
                // A client asking for the tight class must declare a burst
                // that fits inside the headroom the Section-9 criterion
                // checks; low-priority clients declare the Appendix's
                // `(A, 50)`.
                ChurnClass {
                    priority: 0,
                    bucket: bucket_for(paper, 0),
                    per_hop_target: pt.mul_f64(HIGH_TARGET_PKT),
                    loss_rate: 0.001,
                    police: PoliceAction::Drop,
                },
                ChurnClass {
                    priority: 1,
                    bucket: bucket_for(paper, 1),
                    per_hop_target: pt.mul_f64(LOW_TARGET_PKT),
                    loss_rate: 0.001,
                    police: PoliceAction::Drop,
                },
            ],
            source: ChurnSourceSpec {
                avg_rate_pps: paper.avg_rate_pps,
                seed_base: paper.seed,
            },
        }
    }
}

/// What one churn run produced.
#[derive(Debug, Clone)]
pub struct ChurnOutcome {
    /// Offered load in erlangs (λ/μ).
    pub offered_erlangs: f64,
    /// Setup requests that completed (accepted + rejected).
    pub offered: usize,
    /// Setups admitted on every hop.
    pub accepted: usize,
    /// Setups refused by some hop.
    pub rejected: usize,
    /// Chronological accept/reject sequence (for determinism checks).
    pub decisions: Vec<bool>,
    /// Mean utilization over the four inter-switch links.
    pub mean_utilization: f64,
    /// Utilization of the busiest link.
    pub worst_utilization: f64,
    /// Admitted predicted flows whose measured maximum queueing delay
    /// exceeded the advertised bound (Σ per-hop Dᵢ along their path).
    pub violations: usize,
    /// The largest fraction of its advertised bound any admitted predicted
    /// flow consumed (1.0 = exactly at the bound).
    pub worst_bound_fraction: f64,
    /// Guaranteed bandwidth still reserved on any link after every flow was
    /// torn down and the control plane drained — must be zero if rejected
    /// and released setups leave no residue.
    pub residual_reserved_bps: f64,
}

impl WireResult for ChurnOutcome {
    fn to_wire_json(&self) -> String {
        format!(
            "{{\"offered_erlangs\":{},\"offered\":{},\"accepted\":{},\"rejected\":{},\
             \"decisions\":{},\"mean_utilization\":{},\"worst_utilization\":{},\
             \"violations\":{},\"worst_bound_fraction\":{},\"residual_reserved_bps\":{}}}",
            wire_f64(self.offered_erlangs),
            self.offered,
            self.accepted,
            self.rejected,
            self.decisions.to_wire_json(),
            wire_f64(self.mean_utilization),
            wire_f64(self.worst_utilization),
            self.violations,
            wire_f64(self.worst_bound_fraction),
            wire_f64(self.residual_reserved_bps),
        )
    }

    fn from_wire_json(v: &JsonValue) -> Result<Self, WireError> {
        Ok(ChurnOutcome {
            offered_erlangs: v.field("offered_erlangs")?.as_f64_or_nan()?,
            offered: v.field("offered")?.as_usize()?,
            accepted: v.field("accepted")?.as_usize()?,
            rejected: v.field("rejected")?.as_usize()?,
            decisions: Vec::from_wire_json(v.field("decisions")?)?,
            mean_utilization: v.field("mean_utilization")?.as_f64_or_nan()?,
            worst_utilization: v.field("worst_utilization")?.as_f64_or_nan()?,
            violations: v.field("violations")?.as_usize()?,
            worst_bound_fraction: v.field("worst_bound_fraction")?.as_f64_or_nan()?,
            residual_reserved_bps: v.field("residual_reserved_bps")?.as_f64_or_nan()?,
        })
    }
}

impl ChurnOutcome {
    /// Fraction of setup requests refused.
    pub fn blocking_probability(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.rejected as f64 / self.offered as f64
        }
    }
}

/// The per-hop delay target of a predicted priority class, in packet times.
fn class_target_pkt(priority: u8) -> f64 {
    if priority == 0 {
        HIGH_TARGET_PKT
    } else {
        LOW_TARGET_PKT
    }
}

/// The declared token bucket of a predicted churn request: a client asking
/// for the tight class must declare a burst that fits inside the headroom
/// the Section-9 criterion checks; low-priority clients declare the
/// Appendix's `(A, 50)`.
fn bucket_for(paper: &PaperConfig, priority: u8) -> ispn_core::TokenBucketSpec {
    let depth_pkts = if priority == 0 { 20.0 } else { 50.0 };
    ispn_core::TokenBucketSpec::per_packets(paper.avg_rate_pps, depth_pkts, paper.packet_bits)
}

/// Build the churn scenario: the Figure-1 duplex chain with the unified
/// scheduler and a stiffened Section-9 admission controller on every
/// forward link, carrying the declarative churn workload.
fn build_sim(cfg: &ChurnConfig) -> Sim {
    let paper = &cfg.paper;
    let pt = paper.packet_time();
    let forward: Vec<LinkId> = (0..NUM_LINKS).map(LinkId).collect();
    // Under churn many flows can be admitted within one measurement window,
    // before any of them shows up in ν̂; a stiffer safety factor keeps the
    // "consistently conservative estimate" property (Section 9) honest in
    // that regime so admitted flows stay within bound.
    let admission = AdmissionSpec {
        realtime_quota: 0.9,
        class_targets: vec![pt.mul_f64(HIGH_TARGET_PKT), pt.mul_f64(LOW_TARGET_PKT)],
        measurement_window_secs: 10.0,
        util_safety_factor: Some(1.6),
        sample_interval: SimTime::SECOND,
    };
    ScenarioBuilder::new(TopologySpec::chain_duplex(5))
        .link_profile(Fig1Network::link_profile(paper))
        .disciplines(DisciplineMatrix::default().with_links(
            &forward,
            DisciplineSpec::Unified {
                priority_classes: 2,
                averaging: Averaging::RunningMean,
            },
        ))
        .admission_on(forward, admission)
        .workload(WorkloadSpec::Churn(cfg.workload()))
        .build()
        .expect("the churn scenario is valid")
}

/// Run one churn scenario.
pub fn run(cfg: &ChurnConfig) -> ChurnOutcome {
    let paper = cfg.paper.clone();
    let mut sim = build_sim(cfg);

    // The facade owns the whole dynamic workload: arrivals, departures,
    // control messages and the data plane interleave in global event-time
    // order inside this one call.
    sim.run_until(paper.duration);

    // Measure bound compliance over the flows' lifetimes before draining.
    // `churn_flow_reports` covers every admission: flows whose id slot was
    // reclaimed mid-run report the snapshot taken before the recycle reset
    // their monitor row, flows still holding are queried live.
    let pt_secs = paper.packet_time().as_secs_f64();
    let mut violations = 0;
    let mut worst_bound_fraction: f64 = 0.0;
    for record in sim.churn_flow_reports() {
        let Some(priority) = record.priority else {
            continue;
        };
        if record.report.delivered == 0 {
            continue;
        }
        let bound_secs = class_target_pkt(priority) * record.hops as f64 * pt_secs;
        let fraction = record.report.max_delay / bound_secs;
        worst_bound_fraction = worst_bound_fraction.max(fraction);
        if fraction > 1.0 {
            violations += 1;
        }
    }

    let forward: Vec<LinkId> = (0..NUM_LINKS).map(LinkId).collect();
    let mut mean_utilization = 0.0;
    let mut worst_utilization: f64 = 0.0;
    for &link in &forward {
        let u = sim
            .network()
            .monitor()
            .link_report(link.index())
            .utilization;
        mean_utilization += u / NUM_LINKS as f64;
        worst_utilization = worst_utilization.max(u);
    }

    // Drain: stop the arrival process, tear every remaining flow down, let
    // the control plane finish, and verify no reservation survives.
    sim.drain_churn();
    sim.run_until(paper.duration + SimTime::from_secs(1));
    let residual_reserved_bps = forward
        .iter()
        .map(|&l| {
            sim.network()
                .admission(l)
                .expect("admission enabled")
                .reserved_guaranteed_bps()
        })
        .sum();

    let decisions: Vec<bool> = sim
        .signaling()
        .decision_log()
        .iter()
        .map(|&(_, a)| a)
        .collect();
    let accepted = decisions.iter().filter(|&&a| a).count();
    let rejected = decisions.len() - accepted;
    ChurnOutcome {
        offered_erlangs: cfg.offered_erlangs(),
        offered: decisions.len(),
        accepted,
        rejected,
        decisions,
        mean_utilization,
        worst_utilization,
        violations,
        worst_bound_fraction,
        residual_reserved_bps,
    }
}

/// Run a representative churn point (one arrival per second, 15-second
/// mean holding time) with run telemetry enabled and return the engine's
/// counters (the probe behind the `ispn-bench` snapshot harness).
pub fn telemetry_probe(paper: &PaperConfig) -> RunTelemetry {
    let cfg = ChurnConfig::new(paper.clone(), 1.0, 15.0);
    let mut sim = build_sim(&cfg);
    sim.run_until(paper.duration);
    sim.report(&MeasurementPlan::default().with_run_telemetry())
        .telemetry
        .expect("run telemetry was requested")
}

/// Run the offered-load sweep through the given runner, streaming each
/// load point's outcome to `observer` as it completes; the checked,
/// axis-tagged reports feed [`crate::report::render_churn`].
pub fn sweep_reports(
    paper: &PaperConfig,
    arrival_rates: &[f64],
    mean_holding_secs: f64,
    runner: &SweepRunner,
    observer: &dyn SweepObserver<ChurnOutcome>,
) -> Vec<SweepReport<PointResult<ChurnOutcome>>> {
    sweep_exec(
        paper,
        arrival_rates,
        mean_holding_secs,
        &SweepExec::InProcess(*runner),
        observer,
    )
}

/// The offered-load axis of the churn sweep.
pub fn scenario_set(arrival_rates: &[f64]) -> ScenarioSet<(f64,)> {
    ScenarioSet::over("load", arrival_rates.to_vec())
}

/// [`sweep_reports`] generalized over the execution level: in-process
/// threads or distributed worker subprocesses — byte-identical either
/// way, down to the accept/reject decision sequence.
pub fn sweep_exec(
    paper: &PaperConfig,
    arrival_rates: &[f64],
    mean_holding_secs: f64,
    exec: &SweepExec,
    observer: &dyn SweepObserver<ChurnOutcome>,
) -> Vec<SweepReport<PointResult<ChurnOutcome>>> {
    exec.run_streaming(
        &scenario_set(arrival_rates),
        |&(lambda,)| run(&ChurnConfig::new(paper.clone(), lambda, mean_holding_secs)),
        observer,
    )
}

/// Serve churn sweep points to a distributed parent over stdin/stdout
/// (the `churn` bin's `--sweep-worker` mode).
pub fn serve_worker(
    paper: &PaperConfig,
    arrival_rates: &[f64],
    mean_holding_secs: f64,
) -> std::io::Result<()> {
    ispn_scenario::serve_worker(&scenario_set(arrival_rates), |&(lambda,)| {
        run(&ChurnConfig::new(paper.clone(), lambda, mean_holding_secs))
    })
}

/// Serve churn sweep points over a TCP listener bound to `addr` (the
/// `churn` bin's `--serve` mode).
pub fn serve_listener(
    paper: &PaperConfig,
    arrival_rates: &[f64],
    mean_holding_secs: f64,
    addr: &str,
) -> std::io::Result<()> {
    ispn_scenario::serve_listener(addr, &scenario_set(arrival_rates), |&(lambda,)| {
        run(&ChurnConfig::new(paper.clone(), lambda, mean_holding_secs))
    })
}

/// Run the experiment at several offered loads (same holding time, rising
/// arrival rate) through the given runner — each load point is a
/// self-contained scenario, so the sweep parallelizes freely and returns
/// its outcomes in load order whatever the thread count.
pub fn sweep_with(
    paper: &PaperConfig,
    arrival_rates: &[f64],
    mean_holding_secs: f64,
    runner: &SweepRunner,
) -> Vec<ChurnOutcome> {
    sweep_reports(
        paper,
        arrival_rates,
        mean_holding_secs,
        runner,
        &NullObserver,
    )
    .into_iter()
    .map(|r| r.expect_ok().result)
    .collect()
}

/// Run the offered-load sweep serially (the historical entry point; the
/// `churn` binary fans it across threads).
pub fn sweep(
    paper: &PaperConfig,
    arrival_rates: &[f64],
    mean_holding_secs: f64,
) -> Vec<ChurnOutcome> {
    sweep_with(
        paper,
        arrival_rates,
        mean_holding_secs,
        &SweepRunner::serial(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast(arrivals_per_sec: f64) -> ChurnConfig {
        ChurnConfig::new(PaperConfig::fast(), arrivals_per_sec, 15.0)
    }

    #[test]
    fn churn_offers_accepts_and_rejects() {
        let out = run(&fast(1.0));
        assert!(out.offered > 10, "{out:?}");
        assert_eq!(out.offered, out.accepted + out.rejected);
        assert!(out.accepted > 0, "{out:?}");
        // 15 erlangs of mixed flows against 4 links × 0.9 Mbit/s must turn
        // some requests away.
        assert!(out.rejected > 0, "{out:?}");
        assert_eq!(out.decisions.len(), out.offered);
    }

    #[test]
    fn no_residual_reservations_after_drain() {
        let out = run(&fast(0.8));
        assert_eq!(out.residual_reserved_bps, 0.0, "{out:?}");
    }

    #[test]
    fn admitted_predicted_flows_meet_their_bounds() {
        let out = run(&fast(0.6));
        assert_eq!(out.violations, 0, "{out:?}");
        assert!(out.worst_bound_fraction < 1.0, "{out:?}");
    }

    #[test]
    fn same_seed_same_decision_sequence() {
        let a = run(&fast(1.0));
        let b = run(&fast(1.0));
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.accepted, b.accepted);
        assert!((a.mean_utilization - b.mean_utilization).abs() < 1e-12);
    }

    #[test]
    fn blocking_rises_with_offered_load() {
        let low = run(&fast(0.3));
        let high = run(&fast(2.0));
        assert!(
            low.blocking_probability() <= high.blocking_probability(),
            "low {low:?} vs high {high:?}"
        );
        assert!(high.blocking_probability() > 0.0);
    }

    #[test]
    fn parallel_sweep_equals_serial_sweep() {
        let paper = PaperConfig {
            duration: SimTime::from_secs(20),
            ..PaperConfig::fast()
        };
        let rates = [0.5, 1.0];
        let serial = sweep_with(&paper, &rates, 15.0, &SweepRunner::serial());
        let parallel = sweep_with(&paper, &rates, 15.0, &SweepRunner::parallel(2));
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.decisions, p.decisions);
            assert_eq!(s.mean_utilization, p.mean_utilization);
            assert_eq!(s.worst_bound_fraction, p.worst_bound_fraction);
        }
    }
}
