//! Table 3: the unified scheduling algorithm carrying guaranteed, predicted
//! and datagram traffic simultaneously on the Figure-1 chain.
//!
//! The scenario (Section 7): the same 22 real-time on/off flows as Table 2,
//! now differentiated — 3 Guaranteed-Peak flows (clock rate = peak rate),
//! 2 Guaranteed-Average flows (clock rate = average rate), 7 Predicted-High
//! and 10 Predicted-Low flows — plus two greedy datagram TCP connections.
//! Every inter-switch link carries 2 G-Peak, 1 G-Avg, 3 P-High, 4 P-Low and
//! one TCP connection, runs the unified scheduler, and ends up over 99 %
//! utilized with 83.5 % of that being real-time traffic.  The paper reports,
//! for eight sample flows, the mean / 99.9th-percentile / maximum queueing
//! delay and (for guaranteed flows) the Parekh–Gallager bound, and notes the
//! datagram traffic saw a drop rate around 0.1 %.

use ispn_core::bounds::pg_queueing_bound;
use ispn_core::{FlowId, TokenBucketSpec};
use ispn_net::{LinkId, PoliceAction};
use ispn_scenario::{
    DisciplineMatrix, DisciplineSpec, FlowDef, MeasurementPlan, RouteSpec, RunTelemetry,
    ScenarioBuilder, ServiceSpec, Sim, SourceSpec, TcpDef, TopologySpec,
};
use ispn_sched::Averaging;
use ispn_transport::SharedTcpStats;

use crate::config::PaperConfig;
use crate::fig1::{self, Fig1Network, FlowKind, FlowPlacement};

/// Per-hop delay targets for the two predicted classes (the paper asks for
/// "widely spaced" targets; an order of magnitude apart, in packet times).
pub const HIGH_PRIORITY_TARGET_PKT: f64 = 20.0;
/// Low-priority per-hop delay target in packet times.
pub const LOW_PRIORITY_TARGET_PKT: f64 = 200.0;

/// One row of Table 3 (delays in packet transmission times).
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Flow class (Guaranteed-Peak / Guaranteed-Average / Predicted-High /
    /// Predicted-Low).
    pub kind: FlowKind,
    /// Path length in inter-switch links.
    pub path_length: usize,
    /// Mean queueing delay.
    pub mean: f64,
    /// 99.9th-percentile queueing delay.
    pub p999: f64,
    /// Maximum queueing delay.
    pub max: f64,
    /// The Parekh–Gallager bound (guaranteed flows only).
    pub pg_bound: Option<f64>,
}

/// The full Table-3 result.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// The eight sample rows, in the paper's order.
    pub rows: Vec<Table3Row>,
    /// Fraction of datagram (TCP data) packets dropped inside the network.
    pub datagram_drop_rate: f64,
    /// Mean total utilization over the four inter-switch links.
    pub mean_utilization: f64,
    /// Mean real-time utilization over the four inter-switch links.
    pub realtime_utilization: f64,
    /// Goodput of each TCP connection in segments per second.
    pub tcp_goodput_pps: Vec<f64>,
}

impl Table3 {
    /// Look up a row.
    pub fn row(&self, kind: FlowKind, path_length: usize) -> Option<&Table3Row> {
        self.rows
            .iter()
            .find(|r| r.kind == kind && r.path_length == path_length)
    }
}

impl ispn_scenario::WireResult for Table3Row {
    fn to_wire_json(&self) -> String {
        use ispn_scenario::{json_escape, wire_f64};
        format!(
            "{{\"kind\":\"{}\",\"path_length\":{},\"mean\":{},\"p999\":{},\"max\":{},\
             \"pg_bound\":{}}}",
            json_escape(self.kind.label()),
            self.path_length,
            wire_f64(self.mean),
            wire_f64(self.p999),
            wire_f64(self.max),
            match self.pg_bound {
                Some(b) => wire_f64(b),
                None => "null".to_string(),
            },
        )
    }

    fn from_wire_json(v: &ispn_scenario::JsonValue) -> Result<Self, ispn_scenario::WireError> {
        let label = v.field("kind")?.as_str()?;
        let kind = FlowKind::from_label(label)
            .ok_or_else(|| ispn_scenario::WireError::new(format!("unknown flow kind {label:?}")))?;
        let pg_bound = v.field("pg_bound")?;
        Ok(Table3Row {
            kind,
            path_length: v.field("path_length")?.as_usize()?,
            mean: v.field("mean")?.as_f64_or_nan()?,
            p999: v.field("p999")?.as_f64_or_nan()?,
            max: v.field("max")?.as_f64_or_nan()?,
            // A guaranteed row's bound is always finite, so `null` can
            // only mean "no bound" here.
            pg_bound: if pg_bound.is_null() {
                None
            } else {
                Some(pg_bound.as_f64()?)
            },
        })
    }
}

impl ispn_scenario::WireResult for Table3 {
    fn to_wire_json(&self) -> String {
        use ispn_scenario::wire_f64;
        format!(
            "{{\"rows\":{},\"datagram_drop_rate\":{},\"mean_utilization\":{},\
             \"realtime_utilization\":{},\"tcp_goodput_pps\":{}}}",
            self.rows.to_wire_json(),
            wire_f64(self.datagram_drop_rate),
            wire_f64(self.mean_utilization),
            wire_f64(self.realtime_utilization),
            self.tcp_goodput_pps.to_wire_json(),
        )
    }

    fn from_wire_json(v: &ispn_scenario::JsonValue) -> Result<Self, ispn_scenario::WireError> {
        Ok(Table3 {
            rows: Vec::from_wire_json(v.field("rows")?)?,
            datagram_drop_rate: v.field("datagram_drop_rate")?.as_f64_or_nan()?,
            mean_utilization: v.field("mean_utilization")?.as_f64_or_nan()?,
            realtime_utilization: v.field("realtime_utilization")?.as_f64_or_nan()?,
            tcp_goodput_pps: Vec::from_wire_json(v.field("tcp_goodput_pps")?)?,
        })
    }
}

/// The WFQ clock rate (bits/s) each guaranteed kind reserves.
pub fn clock_rate_bps(cfg: &PaperConfig, kind: FlowKind) -> f64 {
    match kind {
        FlowKind::GuaranteedPeak => 2.0 * cfg.avg_rate_pps * cfg.packet_bits as f64,
        FlowKind::GuaranteedAverage => cfg.avg_rate_pps * cfg.packet_bits as f64,
        _ => panic!("only guaranteed flows reserve a clock rate"),
    }
}

/// The token bucket that characterizes a guaranteed flow's traffic at its
/// clock rate, i.e. the `b(r)` the Parekh–Gallager bound uses: one packet at
/// the peak rate, the full 50-packet source bucket at the average rate.
pub fn pg_bucket(cfg: &PaperConfig, kind: FlowKind) -> TokenBucketSpec {
    match kind {
        FlowKind::GuaranteedPeak => {
            TokenBucketSpec::per_packets(2.0 * cfg.avg_rate_pps, 1.0, cfg.packet_bits)
        }
        FlowKind::GuaranteedAverage => {
            TokenBucketSpec::per_packets(cfg.avg_rate_pps, 50.0, cfg.packet_bits)
        }
        _ => panic!("only guaranteed flows have a P-G bucket"),
    }
}

/// Everything the scenario constructs, exposed so tests, examples and the
/// admission-control extension can reuse the wiring.
pub struct Table3Scenario {
    /// The simulation (network + control plane), ready to run.
    pub sim: Sim,
    /// The 22 real-time flows with their placements.
    pub flows: Vec<(FlowPlacement, FlowId)>,
    /// The TCP connections' shared statistics.
    pub tcp_stats: Vec<SharedTcpStats>,
    /// The TCP data-flow ids (for drop accounting).
    pub tcp_data_flows: Vec<FlowId>,
}

/// The declarative flow definition of one Table-3 placement.
pub fn flow_def(cfg: &PaperConfig, p: &FlowPlacement, seed_index: u32) -> FlowDef {
    let source_bucket = TokenBucketSpec::per_packets(cfg.avg_rate_pps, 50.0, cfg.packet_bits);
    let pt = cfg.packet_time();
    let service = match p.kind {
        FlowKind::GuaranteedPeak | FlowKind::GuaranteedAverage => ServiceSpec::Guaranteed {
            clock_rate_bps: clock_rate_bps(cfg, p.kind),
        },
        FlowKind::PredictedHigh => ServiceSpec::Predicted {
            priority: 0,
            bucket: source_bucket,
            target_delay: pt.mul_f64(HIGH_PRIORITY_TARGET_PKT * p.hops as f64),
            loss_rate: 0.001,
            police: PoliceAction::Drop,
        },
        FlowKind::PredictedLow => ServiceSpec::Predicted {
            priority: 1,
            bucket: source_bucket,
            target_delay: pt.mul_f64(LOW_PRIORITY_TARGET_PKT * p.hops as f64),
            loss_rate: 0.001,
            police: PoliceAction::Drop,
        },
    };
    FlowDef::new(
        RouteSpec::Span {
            first: p.first_link,
            hops: p.hops,
        },
        service,
    )
    .source(SourceSpec::onoff_paper(
        cfg.avg_rate_pps,
        cfg.flow_seed(seed_index),
    ))
}

/// Build the Table-3 scenario (does not run it): the Figure-1 duplex
/// chain, the unified scheduler on every forward link, the 22 classed
/// flows and the two TCP connections — all declared through the scenario
/// API.
pub fn build(cfg: &PaperConfig) -> Table3Scenario {
    let placements = fig1::placement();
    let forward: Vec<LinkId> = (0..fig1::NUM_LINKS).map(LinkId).collect();
    let mut builder = ScenarioBuilder::new(TopologySpec::chain_duplex(5))
        .link_profile(Fig1Network::link_profile(cfg))
        .disciplines(DisciplineMatrix::default().with_links(
            &forward,
            DisciplineSpec::Unified {
                priority_classes: 2,
                averaging: Averaging::RunningMean,
            },
        ));
    for (i, p) in placements.iter().enumerate() {
        builder = builder.flow(flow_def(cfg, p, i as u32));
    }
    for (first, hops) in fig1::tcp_placement() {
        builder = builder.tcp(TcpDef::over_span(first, hops));
    }
    let sim = builder.build().expect("the Table-3 scenario is valid");

    let flows = placements.into_iter().zip(sim.flows().to_vec()).collect();
    let tcp_stats = sim.tcp().iter().map(|h| h.stats.clone()).collect();
    let tcp_data_flows = sim.tcp().iter().map(|h| h.data_flow).collect();
    Table3Scenario {
        sim,
        flows,
        tcp_stats,
        tcp_data_flows,
    }
}

fn sample_flow(
    flows: &[(FlowPlacement, FlowId)],
    kind: FlowKind,
    path_length: usize,
) -> Option<FlowId> {
    flows
        .iter()
        .filter(|(p, _)| p.kind == kind && p.hops == path_length)
        .min_by_key(|(p, _)| p.first_link)
        .map(|(_, f)| *f)
}

/// Run the Table-3 scenario and summarize it in the paper's format.
pub fn run(cfg: &PaperConfig) -> Table3 {
    let mut scenario = build(cfg);
    scenario.sim.run_until(cfg.duration);
    summarize(cfg, &mut scenario)
}

/// Run the Table-3 scenario with run telemetry enabled and return the
/// engine's counters (the probe behind the `ispn-bench` snapshot harness).
pub fn telemetry_probe(cfg: &PaperConfig) -> RunTelemetry {
    let mut scenario = build(cfg);
    scenario.sim.run_until(cfg.duration);
    scenario
        .sim
        .report(&MeasurementPlan::default().with_run_telemetry())
        .telemetry
        .expect("run telemetry was requested")
}

/// Replicate Table 3 across a seed axis through the given runner,
/// streaming each replication to `observer` as it completes; the checked,
/// seed-tagged reports feed [`crate::report::render_table3_seeds`], and a
/// panicking replication surfaces as its point's `Err` instead of
/// aborting the others.
pub fn run_seeds_reports(
    cfg: &PaperConfig,
    seeds: &[u64],
    runner: &ispn_scenario::SweepRunner,
    observer: &dyn ispn_scenario::SweepObserver<(u64, Table3)>,
) -> Vec<ispn_scenario::SweepReport<ispn_scenario::PointResult<(u64, Table3)>>> {
    run_seeds_exec(
        cfg,
        seeds,
        &ispn_scenario::SweepExec::InProcess(*runner),
        observer,
    )
}

/// The seed axis of the Table-3 replication sweep.
pub fn seed_set(seeds: &[u64]) -> ispn_scenario::ScenarioSet<(u64,)> {
    ispn_scenario::ScenarioSet::over("seed", seeds.to_vec())
}

/// [`run_seeds_reports`] generalized over the execution level: in-process
/// threads or distributed worker subprocesses, byte-identical either way.
pub fn run_seeds_exec(
    cfg: &PaperConfig,
    seeds: &[u64],
    exec: &ispn_scenario::SweepExec,
    observer: &dyn ispn_scenario::SweepObserver<(u64, Table3)>,
) -> Vec<ispn_scenario::SweepReport<ispn_scenario::PointResult<(u64, Table3)>>> {
    exec.run_streaming(
        &seed_set(seeds),
        |&(seed,)| run_seed_point(cfg, seed),
        observer,
    )
}

/// Run one seed-replication point.
fn run_seed_point(cfg: &PaperConfig, seed: u64) -> (u64, Table3) {
    let cfg = PaperConfig {
        seed,
        ..cfg.clone()
    };
    (seed, run(&cfg))
}

/// Serve Table-3 seed-replication points to a distributed parent over
/// stdin/stdout (the `table3` bin's `--sweep-worker` mode; the parent
/// passes the same `--seeds N` so both sides build the same axis).
pub fn serve_worker(cfg: &PaperConfig, seeds: &[u64]) -> std::io::Result<()> {
    ispn_scenario::serve_worker(&seed_set(seeds), |&(seed,)| run_seed_point(cfg, seed))
}

/// Serve Table-3 seed-replication points over a TCP listener bound to
/// `addr` (the `table3` bin's `--serve` mode; the parent passes the same
/// `--seeds N` so both sides build the same axis).
pub fn serve_listener(cfg: &PaperConfig, seeds: &[u64], addr: &str) -> std::io::Result<()> {
    ispn_scenario::serve_listener(addr, &seed_set(seeds), |&(seed,)| run_seed_point(cfg, seed))
}

/// Replicate Table 3 across seeds — the paper reports one random run; a
/// seed axis turns it into a replication study (how much do the sample
/// rows move between runs?).  Each seed is a self-contained scenario
/// point, fanned across the runner's threads, returned in seed order.
pub fn run_seeds(
    cfg: &PaperConfig,
    seeds: &[u64],
    runner: &ispn_scenario::SweepRunner,
) -> Vec<(u64, Table3)> {
    run_seeds_reports(cfg, seeds, runner, &ispn_scenario::NullObserver)
        .into_iter()
        .map(|r| r.expect_ok().result)
        .collect()
}

/// Summarize an already-run scenario.
pub fn summarize(cfg: &PaperConfig, scenario: &mut Table3Scenario) -> Table3 {
    let pt = cfg.packet_time().as_secs_f64();
    let samples = [
        (FlowKind::GuaranteedPeak, 4),
        (FlowKind::GuaranteedPeak, 2),
        (FlowKind::GuaranteedAverage, 3),
        (FlowKind::GuaranteedAverage, 1),
        (FlowKind::PredictedHigh, 4),
        (FlowKind::PredictedHigh, 2),
        (FlowKind::PredictedLow, 3),
        (FlowKind::PredictedLow, 1),
    ];
    let mut rows = Vec::new();
    for (kind, hops) in samples {
        let flow = sample_flow(&scenario.flows, kind, hops)
            .expect("the placement provides every sample row");
        let r = scenario.sim.network_mut().monitor_mut().flow_report(flow);
        let pg_bound = kind.is_guaranteed().then(|| {
            pg_queueing_bound(
                pg_bucket(cfg, kind),
                clock_rate_bps(cfg, kind),
                hops,
                cfg.packet_bits,
            )
            .as_secs_f64()
                / pt
        });
        rows.push(Table3Row {
            kind,
            path_length: hops,
            mean: r.mean_delay / pt,
            p999: r.p999_delay / pt,
            max: r.max_delay / pt,
            pg_bound,
        });
    }

    // Datagram drop rate: buffer drops over generated segments, across the
    // two TCP data flows.
    let mut generated = 0u64;
    let mut dropped = 0u64;
    for &f in &scenario.tcp_data_flows {
        let r = scenario.sim.network_mut().monitor_mut().flow_report(f);
        generated += r.generated;
        dropped += r.dropped_buffer;
    }
    let datagram_drop_rate = if generated > 0 {
        dropped as f64 / generated as f64
    } else {
        0.0
    };

    let mut util = 0.0;
    let mut rt_util = 0.0;
    for i in 0..fig1::NUM_LINKS {
        let lr = scenario.sim.network().monitor().link_report(i);
        util += lr.utilization;
        rt_util += lr.realtime_utilization;
    }
    util /= fig1::NUM_LINKS as f64;
    rt_util /= fig1::NUM_LINKS as f64;

    let secs = cfg.duration.as_secs_f64();
    let tcp_goodput_pps = scenario
        .tcp_stats
        .iter()
        .map(|s| s.borrow().goodput_pps(secs))
        .collect();

    Table3 {
        rows,
        datagram_drop_rate,
        mean_utilization: util,
        realtime_utilization: rt_util,
        tcp_goodput_pps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispn_core::ServiceClass;

    #[test]
    fn clock_rates_and_buckets_match_the_paper() {
        let cfg = PaperConfig::paper();
        assert_eq!(clock_rate_bps(&cfg, FlowKind::GuaranteedPeak), 170_000.0);
        assert_eq!(clock_rate_bps(&cfg, FlowKind::GuaranteedAverage), 85_000.0);
        let peak = pg_bucket(&cfg, FlowKind::GuaranteedPeak);
        assert_eq!(peak.depth_bits, 1000.0);
        let avg = pg_bucket(&cfg, FlowKind::GuaranteedAverage);
        assert_eq!(avg.depth_bits, 50_000.0);
    }

    #[test]
    #[should_panic]
    fn predicted_flows_have_no_clock_rate() {
        let _ = clock_rate_bps(&PaperConfig::paper(), FlowKind::PredictedHigh);
    }

    #[test]
    fn scenario_wiring_is_complete() {
        let cfg = PaperConfig::fast();
        let scenario = build(&cfg);
        // 22 real-time flows + 2 TCP data flows + 2 TCP ack flows.
        assert_eq!(scenario.sim.network().num_flows(), 26);
        assert_eq!(scenario.flows.len(), 22);
        assert_eq!(scenario.tcp_stats.len(), 2);
        // Every forward link runs the unified scheduler.
        for i in 0..fig1::NUM_LINKS {
            assert_eq!(
                scenario.sim.network().discipline_name(ispn_net::LinkId(i)),
                "Unified"
            );
        }
        // Guaranteed flows carry the Guaranteed class, predicted flows their
        // priorities.
        for (p, id) in &scenario.flows {
            let class = scenario.sim.network().flow_config(*id).class;
            match p.kind {
                FlowKind::GuaranteedPeak | FlowKind::GuaranteedAverage => {
                    assert_eq!(class, ServiceClass::Guaranteed)
                }
                FlowKind::PredictedHigh => {
                    assert_eq!(class, ServiceClass::Predicted { priority: 0 })
                }
                FlowKind::PredictedLow => {
                    assert_eq!(class, ServiceClass::Predicted { priority: 1 })
                }
            }
        }
    }

    #[test]
    fn shortened_run_reproduces_the_tables_shape() {
        let cfg = PaperConfig::fast();
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 8);

        // Guaranteed flows stay within their Parekh-Gallager bounds.
        for row in &t.rows {
            if let Some(bound) = row.pg_bound {
                assert!(
                    row.max <= bound + 1.0,
                    "{:?} path {} max {} exceeds P-G bound {}",
                    row.kind,
                    row.path_length,
                    row.max,
                    bound
                );
            }
            assert!(row.p999 >= row.mean);
            assert!(row.max >= row.p999 * 0.999);
        }

        // The published bound values themselves.
        let b = |k, h| t.row(k, h).unwrap().pg_bound.unwrap();
        assert!((b(FlowKind::GuaranteedPeak, 4) - 23.53).abs() < 0.05);
        assert!((b(FlowKind::GuaranteedPeak, 2) - 11.76).abs() < 0.05);
        assert!((b(FlowKind::GuaranteedAverage, 3) - 611.76).abs() < 0.1);
        assert!((b(FlowKind::GuaranteedAverage, 1) - 588.24).abs() < 0.1);

        // Predicted-High sees less delay than Predicted-Low on comparable
        // paths (here: 99.9th percentile of the 1-vs-2 hop samples compared
        // per class is noisy in 40 s, so compare means of the short paths).
        let high2 = t.row(FlowKind::PredictedHigh, 2).unwrap().mean;
        let low3 = t.row(FlowKind::PredictedLow, 3).unwrap().mean;
        assert!(
            high2 < low3,
            "P-High(2) {high2} should be below P-Low(3) {low3}"
        );

        // The TCP background pushes utilization well above the 83.5 % the
        // real-time flows alone would produce.
        assert!(
            t.mean_utilization > 0.93,
            "utilization {}",
            t.mean_utilization
        );
        assert!(
            (t.realtime_utilization - 0.835).abs() < 0.06,
            "realtime utilization {}",
            t.realtime_utilization
        );
        // Datagram drops exist but stay small.
        assert!(
            t.datagram_drop_rate < 0.05,
            "drop rate {}",
            t.datagram_drop_rate
        );
        // Both TCP connections move traffic.
        assert!(
            t.tcp_goodput_pps.iter().all(|&g| g > 10.0),
            "{:?}",
            t.tcp_goodput_pps
        );
    }
}
