//! Mesh cross-traffic study: guaranteed, predicted and datagram flows
//! competing on the shared interior links of a 3×3 grid.
//!
//! The paper's own evaluation never leaves the Figure-1 chain; this is the
//! first scenario the declarative API makes cheap.  Three guaranteed
//! west→east row flows, three Predicted-High north→south column flows, a
//! configurable number of Predicted-Low row flows (the offered-load knob)
//! and four best-effort corner-to-corner flows all meet on the links around
//! the centre switch, every link running the unified scheduler.  The study
//! asks the Table-3 question in a topology with genuine cross-traffic: do
//! the guaranteed flows stay isolated, does the priority spacing hold, and
//! how much worse off are the interior links than the edge?

use ispn_core::TokenBucketSpec;
use ispn_net::PoliceAction;
use ispn_net::{LinkId, NodeId};
use ispn_scenario::{
    json_escape, wire_f64, DisciplineSpec, FlowDef, JsonValue, MeasurementPlan, NullObserver,
    PointResult, RouteSpec, RunTelemetry, ScenarioBuilder, ScenarioReport, ScenarioSet,
    ServiceSpec, Sim, SourceSpec, SweepExec, SweepObserver, SweepReport, SweepRunner, WireError,
    WireResult,
};
use ispn_sched::Averaging;

use crate::config::PaperConfig;
use crate::table3::{HIGH_PRIORITY_TARGET_PKT, LOW_PRIORITY_TARGET_PKT};

/// Grid side length (3×3: one genuine interior switch).
pub const SIDE: usize = 3;

/// Number of best-effort corner-to-corner flows in the mesh scenario.
const CORNER_FLOWS: usize = 4;

/// Aggregate statistics of one traffic class (delays in packet times).
#[derive(Debug, Clone)]
pub struct ClassStats {
    /// Class label.
    pub class: &'static str,
    /// Number of flows in the class.
    pub flows: usize,
    /// Mean queueing delay over the class's flows.
    pub mean: f64,
    /// Worst per-flow 99.9th-percentile queueing delay.
    pub worst_p999: f64,
    /// Worst per-flow maximum queueing delay.
    pub worst_max: f64,
    /// Mean per-flow delay jitter (standard deviation).
    pub jitter: f64,
    /// Packets lost inside the network over packets generated.
    pub loss_rate: f64,
}

/// Every class label an experiment's [`ClassStats`] row can carry (mesh
/// and hetmix share the type, so the pool is their union).
const CLASS_LABELS: &[&str] = &[
    "Guaranteed",
    "Guaranteed-CBR",
    "Predicted-High",
    "Predicted-Low",
    "Datagram",
];

/// Map a decoded class label back to its `&'static` experiment label.
fn intern_class_label(label: &str) -> Result<&'static str, WireError> {
    crate::support::intern_label(label, CLASS_LABELS, "class")
}

impl WireResult for ClassStats {
    fn to_wire_json(&self) -> String {
        format!(
            "{{\"class\":\"{}\",\"flows\":{},\"mean\":{},\"worst_p999\":{},\"worst_max\":{},\
             \"jitter\":{},\"loss_rate\":{}}}",
            json_escape(self.class),
            self.flows,
            wire_f64(self.mean),
            wire_f64(self.worst_p999),
            wire_f64(self.worst_max),
            wire_f64(self.jitter),
            wire_f64(self.loss_rate),
        )
    }

    fn from_wire_json(v: &JsonValue) -> Result<Self, WireError> {
        Ok(ClassStats {
            class: intern_class_label(v.field("class")?.as_str()?)?,
            flows: v.field("flows")?.as_usize()?,
            mean: v.field("mean")?.as_f64_or_nan()?,
            worst_p999: v.field("worst_p999")?.as_f64_or_nan()?,
            worst_max: v.field("worst_max")?.as_f64_or_nan()?,
            jitter: v.field("jitter")?.as_f64_or_nan()?,
            loss_rate: v.field("loss_rate")?.as_f64_or_nan()?,
        })
    }
}

/// Outcome of one mesh run.
#[derive(Debug, Clone)]
pub struct MeshOutcome {
    /// Predicted-Low row flows per row (the offered-load knob).
    pub cross_flows_per_row: usize,
    /// Per-class aggregates: Guaranteed, Predicted-High, Predicted-Low,
    /// Datagram.
    pub classes: Vec<ClassStats>,
    /// Mean utilization of the links incident to the centre switch.
    pub interior_utilization: f64,
    /// Mean utilization of the remaining (edge) links.
    pub edge_utilization: f64,
    /// Buffer drops on interior links.
    pub interior_drops: u64,
    /// The structured scenario report (for serialization).
    pub report: ScenarioReport,
}

impl WireResult for MeshOutcome {
    fn to_wire_json(&self) -> String {
        format!(
            "{{\"cross_flows_per_row\":{},\"classes\":{},\"interior_utilization\":{},\
             \"edge_utilization\":{},\"interior_drops\":{},\"report\":{}}}",
            self.cross_flows_per_row,
            self.classes.to_wire_json(),
            wire_f64(self.interior_utilization),
            wire_f64(self.edge_utilization),
            self.interior_drops,
            self.report.to_wire_json(),
        )
    }

    fn from_wire_json(v: &JsonValue) -> Result<Self, WireError> {
        Ok(MeshOutcome {
            cross_flows_per_row: v.field("cross_flows_per_row")?.as_usize()?,
            classes: Vec::from_wire_json(v.field("classes")?)?,
            interior_utilization: v.field("interior_utilization")?.as_f64_or_nan()?,
            edge_utilization: v.field("edge_utilization")?.as_f64_or_nan()?,
            interior_drops: v.field("interior_drops")?.as_u64()?,
            report: ScenarioReport::from_wire_json(v.field("report")?)?,
        })
    }
}

/// Fold a class's per-flow summaries into one [`ClassStats`] row, with
/// delays converted to the configuration's packet-time unit.  Shared by
/// every scenario-API study that groups flows into classes ([`crate::hetmix`]
/// uses it too).
pub fn aggregate_class(
    flows: &[ispn_scenario::FlowSummary],
    cfg: &PaperConfig,
    class: &'static str,
) -> ClassStats {
    let pt = cfg.packet_time().as_secs_f64();
    let n = flows.len().max(1) as f64;
    let mut generated = 0u64;
    let mut lost = 0u64;
    let mut mean = 0.0;
    let mut jitter = 0.0;
    let mut worst_p999: f64 = 0.0;
    let mut worst_max: f64 = 0.0;
    for f in flows {
        generated += f.generated;
        lost += f.dropped_buffer;
        mean += f.mean_delay_s / pt / n;
        jitter += f.jitter_s / pt / n;
        worst_p999 = worst_p999.max(f.p999_delay_s / pt);
        worst_max = worst_max.max(f.max_delay_s / pt);
    }
    ClassStats {
        class,
        flows: flows.len(),
        mean,
        worst_p999,
        worst_max,
        jitter,
        loss_rate: if generated > 0 {
            lost as f64 / generated as f64
        } else {
            0.0
        },
    }
}

/// Build one mesh scenario with `cross_flows_per_row` Predicted-Low flows
/// sharing each row with its guaranteed flow.
fn build_mesh(cfg: &PaperConfig, cross_flows_per_row: usize) -> Sim {
    let pt = cfg.packet_time();
    let bucket = TokenBucketSpec::per_packets(cfg.avg_rate_pps, 50.0, cfg.packet_bits);
    let peak_bps = 2.0 * cfg.avg_rate_pps * cfg.packet_bits as f64;
    let node = |r: usize, c: usize| NodeId(r * SIDE + c);

    let mut builder = ScenarioBuilder::mesh(SIDE, SIDE)
        .link_profile(crate::fig1::Fig1Network::link_profile(cfg))
        .discipline(DisciplineSpec::Unified {
            priority_classes: 2,
            averaging: Averaging::RunningMean,
        });

    let mut seed = 0u32;
    let mut next_seed = |def: FlowDef| {
        let def = def.source(SourceSpec::onoff_paper(
            cfg.avg_rate_pps,
            cfg.flow_seed(seed),
        ));
        seed += 1;
        def
    };

    // Guaranteed west→east row flows (indices 0..SIDE).
    for r in 0..SIDE {
        builder = builder.flow(next_seed(FlowDef::new(
            RouteSpec::Path {
                from: node(r, 0),
                to: node(r, SIDE - 1),
            },
            ServiceSpec::Guaranteed {
                clock_rate_bps: peak_bps,
            },
        )));
    }
    // Predicted-High north→south column flows (indices SIDE..2*SIDE).
    for c in 0..SIDE {
        builder = builder.flow(next_seed(FlowDef::new(
            RouteSpec::Path {
                from: node(0, c),
                to: node(SIDE - 1, c),
            },
            ServiceSpec::Predicted {
                priority: 0,
                bucket,
                target_delay: pt.mul_f64(HIGH_PRIORITY_TARGET_PKT * (SIDE - 1) as f64),
                loss_rate: 0.001,
                police: PoliceAction::Drop,
            },
        )));
    }
    // Predicted-Low cross traffic sharing the row links (the load knob).
    for r in 0..SIDE {
        for _ in 0..cross_flows_per_row {
            builder = builder.flow(next_seed(FlowDef::new(
                RouteSpec::Path {
                    from: node(r, 0),
                    to: node(r, SIDE - 1),
                },
                ServiceSpec::Predicted {
                    priority: 1,
                    bucket,
                    target_delay: pt.mul_f64(LOW_PRIORITY_TARGET_PKT * (SIDE - 1) as f64),
                    loss_rate: 0.001,
                    police: PoliceAction::Drop,
                },
            )));
        }
    }
    // Best-effort corner-to-corner flows crossing rows and columns.
    let corners = [
        (node(0, 0), node(SIDE - 1, SIDE - 1)),
        (node(SIDE - 1, SIDE - 1), node(0, 0)),
        (node(0, SIDE - 1), node(SIDE - 1, 0)),
        (node(SIDE - 1, 0), node(0, SIDE - 1)),
    ];
    for (from, to) in corners {
        builder = builder.flow(next_seed(FlowDef::new(
            RouteSpec::Path { from, to },
            ServiceSpec::Datagram,
        )));
    }

    builder.build().expect("the mesh scenario is valid")
}

/// Run one mesh scenario with `cross_flows_per_row` Predicted-Low flows
/// sharing each row with its guaranteed flow.
pub fn run(cfg: &PaperConfig, cross_flows_per_row: usize) -> MeshOutcome {
    let mut sim = build_mesh(cfg, cross_flows_per_row);
    sim.run_until(cfg.duration);
    let report = sim.report(&MeasurementPlan::default());

    // Interior = links incident to the centre switch.
    let centre = NodeId((SIDE / 2) * SIDE + SIDE / 2);
    let mut interior_utilization = 0.0;
    let mut edge_utilization = 0.0;
    let mut interior = 0usize;
    let mut edge = 0usize;
    let mut interior_drops = 0u64;
    for l in &report.links {
        let params = sim.network().topology().link(LinkId(l.link));
        if params.from == centre || params.to == centre {
            interior_utilization += l.utilization;
            interior_drops += l.drops;
            interior += 1;
        } else {
            edge_utilization += l.utilization;
            edge += 1;
        }
    }
    interior_utilization /= interior.max(1) as f64;
    edge_utilization /= edge.max(1) as f64;

    let g = SIDE;
    let h = SIDE;
    let low = SIDE * cross_flows_per_row;
    let classes = vec![
        aggregate_class(&report.flows[0..g], cfg, "Guaranteed"),
        aggregate_class(&report.flows[g..g + h], cfg, "Predicted-High"),
        aggregate_class(&report.flows[g + h..g + h + low], cfg, "Predicted-Low"),
        aggregate_class(
            &report.flows[g + h + low..g + h + low + CORNER_FLOWS],
            cfg,
            "Datagram",
        ),
    ];

    MeshOutcome {
        cross_flows_per_row,
        classes,
        interior_utilization,
        edge_utilization,
        interior_drops,
        report,
    }
}

/// Run the mesh at one cross-traffic flow per row with run telemetry
/// enabled and return the engine's counters (the probe behind the
/// `ispn-bench` snapshot harness).
pub fn telemetry_probe(cfg: &PaperConfig) -> RunTelemetry {
    let mut sim = build_mesh(cfg, 1);
    sim.run_until(cfg.duration);
    sim.report(&MeasurementPlan::default().with_run_telemetry())
        .telemetry
        .expect("run telemetry was requested")
}

/// Sweep the Predicted-Low cross-traffic level through the given runner,
/// streaming each outcome to `observer` as it completes; the checked,
/// axis-tagged reports feed [`crate::report::render_mesh`].
pub fn sweep_reports(
    cfg: &PaperConfig,
    levels: &[usize],
    runner: &SweepRunner,
    observer: &dyn SweepObserver<MeshOutcome>,
) -> Vec<SweepReport<PointResult<MeshOutcome>>> {
    sweep_exec(cfg, levels, &SweepExec::InProcess(*runner), observer)
}

/// The cross-traffic axis of the mesh sweep.
pub fn scenario_set(levels: &[usize]) -> ScenarioSet<(usize,)> {
    ScenarioSet::over("cross", levels.to_vec())
}

/// [`sweep_reports`] generalized over the execution level: in-process
/// threads or distributed worker subprocesses, byte-identical either way.
pub fn sweep_exec(
    cfg: &PaperConfig,
    levels: &[usize],
    exec: &SweepExec,
    observer: &dyn SweepObserver<MeshOutcome>,
) -> Vec<SweepReport<PointResult<MeshOutcome>>> {
    exec.run_streaming(&scenario_set(levels), |&(level,)| run(cfg, level), observer)
}

/// Serve mesh sweep points to a distributed parent over stdin/stdout (the
/// `mesh` bin's `--sweep-worker` mode).
pub fn serve_worker(cfg: &PaperConfig, levels: &[usize]) -> std::io::Result<()> {
    ispn_scenario::serve_worker(&scenario_set(levels), |&(level,)| run(cfg, level))
}

/// Serve mesh sweep points over a TCP listener bound to `addr` (the
/// `mesh` bin's `--serve` mode).
pub fn serve_listener(cfg: &PaperConfig, levels: &[usize], addr: &str) -> std::io::Result<()> {
    ispn_scenario::serve_listener(addr, &scenario_set(levels), |&(level,)| run(cfg, level))
}

/// Sweep the Predicted-Low cross-traffic level through the given runner.
pub fn sweep_with(cfg: &PaperConfig, levels: &[usize], runner: &SweepRunner) -> Vec<MeshOutcome> {
    sweep_reports(cfg, levels, runner, &NullObserver)
        .into_iter()
        .map(|r| r.expect_ok().result)
        .collect()
}

/// Sweep the Predicted-Low cross-traffic level serially (the `mesh`
/// binary fans it across threads).
pub fn sweep(cfg: &PaperConfig, levels: &[usize]) -> Vec<MeshOutcome> {
    sweep_with(cfg, levels, &SweepRunner::serial())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drift guard: every class label mesh and hetmix hand to
    /// [`aggregate_class`] must intern, or distributed runs would poison
    /// points with "unknown class label" at decode.
    #[test]
    fn class_pool_covers_every_emittable_label() {
        for label in [
            "Guaranteed",
            "Guaranteed-CBR",
            "Predicted-High",
            "Predicted-Low",
            "Datagram",
        ] {
            assert_eq!(intern_class_label(label), Ok(label));
        }
        assert!(intern_class_label("Best-Effort-Maybe").is_err());
    }

    #[test]
    fn classes_are_ordered_and_complete() {
        let cfg = PaperConfig {
            duration: ispn_sim::SimTime::from_secs(10),
            ..PaperConfig::paper()
        };
        let out = run(&cfg, 2);
        assert_eq!(out.classes.len(), 4);
        assert_eq!(out.classes[0].class, "Guaranteed");
        assert_eq!(out.classes[0].flows, 3);
        assert_eq!(out.classes[2].flows, 6);
        // Every class moved traffic.
        for c in &out.classes {
            assert!(c.mean >= 0.0, "{c:?}");
        }
        assert!(out.report.flows.iter().all(|f| f.delivered > 0));
        // 12 duplex grid edges = 24 directed links, 8 of them interior.
        assert_eq!(out.report.links.len(), 24);
    }

    #[test]
    fn cross_traffic_raises_interior_load_and_low_class_delay() {
        let cfg = PaperConfig {
            duration: ispn_sim::SimTime::from_secs(20),
            ..PaperConfig::paper()
        };
        let light = run(&cfg, 1);
        let heavy = run(&cfg, 6);
        assert!(
            heavy.edge_utilization > light.edge_utilization,
            "more cross flows must load the rows: {} vs {}",
            heavy.edge_utilization,
            light.edge_utilization
        );
        let low = |o: &MeshOutcome| o.classes[2].mean;
        assert!(
            low(&heavy) > low(&light),
            "Predicted-Low should queue longer under load: {} vs {}",
            low(&heavy),
            low(&light)
        );
        // Guaranteed flows stay isolated: their worst max remains small
        // even under heavy cross traffic (WFQ isolation inside Unified).
        assert!(
            heavy.classes[0].worst_max < heavy.classes[2].worst_max,
            "guaranteed {} vs predicted-low {}",
            heavy.classes[0].worst_max,
            heavy.classes[2].worst_max
        );
    }

    #[test]
    fn same_seed_same_outcome() {
        let cfg = PaperConfig {
            duration: ispn_sim::SimTime::from_secs(5),
            ..PaperConfig::paper()
        };
        let a = run(&cfg, 2);
        let b = run(&cfg, 2);
        assert_eq!(a.report.to_json(), b.report.to_json());
    }
}
