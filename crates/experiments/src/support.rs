//! Shared plumbing for the experiment scenarios.

use ispn_core::{FlowId, ServiceClass};
use ispn_net::Network;
use ispn_sched::{Averaging, Discipline, Fifo, FifoPlus, VirtualClock, Wfq};
use ispn_traffic::{OnOffConfig, OnOffSource, SharedSourceStats};

use crate::config::PaperConfig;

/// The disciplines Tables 1 and 2 compare (plus VirtualClock for the
/// ablation benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisciplineKind {
    /// Plain FIFO.
    Fifo,
    /// Weighted Fair Queueing with equal clock rates.
    Wfq,
    /// FIFO+ (running-mean class average).
    FifoPlus,
    /// FIFO+ with an EWMA class average (ablation).
    FifoPlusEwma,
    /// VirtualClock with equal rates (ablation).
    VirtualClock,
}

impl ispn_scenario::AxisValue for DisciplineKind {
    /// Discipline axes tag sweep points with the printed label.
    fn axis_label(&self) -> String {
        self.label().to_string()
    }
}

impl DisciplineKind {
    /// The label used in experiment output (matches the paper's tables for
    /// the three disciplines it names).
    pub fn label(self) -> &'static str {
        match self {
            DisciplineKind::Fifo => "FIFO",
            DisciplineKind::Wfq => "WFQ",
            DisciplineKind::FifoPlus => "FIFO+",
            DisciplineKind::FifoPlusEwma => "FIFO+ (EWMA)",
            DisciplineKind::VirtualClock => "VirtualClock",
        }
    }

    /// The scenario-API recipe for this discipline (the declarative
    /// counterpart of [`build`](DisciplineKind::build); the builder fills
    /// in per-link context like the equal-share flow count).
    pub fn spec(self) -> ispn_scenario::DisciplineSpec {
        use ispn_scenario::DisciplineSpec;
        match self {
            DisciplineKind::Fifo => DisciplineSpec::Fifo,
            DisciplineKind::Wfq => DisciplineSpec::Wfq,
            DisciplineKind::FifoPlus => DisciplineSpec::FifoPlus(Averaging::RunningMean),
            DisciplineKind::FifoPlusEwma => DisciplineSpec::FifoPlus(Averaging::Ewma(1.0 / 16.0)),
            DisciplineKind::VirtualClock => DisciplineSpec::VirtualClock,
        }
    }

    /// Construct a fresh discipline instance for one link shared by
    /// `flows_on_link` equal flows.
    pub fn build(self, cfg: &PaperConfig, flows_on_link: usize) -> Discipline {
        match self {
            DisciplineKind::Fifo => Fifo::new().into(),
            DisciplineKind::Wfq => Wfq::equal_share(cfg.link_rate_bps, flows_on_link).into(),
            DisciplineKind::FifoPlus => FifoPlus::new(Averaging::RunningMean).into(),
            DisciplineKind::FifoPlusEwma => FifoPlus::new(Averaging::Ewma(1.0 / 16.0)).into(),
            DisciplineKind::VirtualClock => {
                VirtualClock::new(cfg.link_rate_bps / flows_on_link.max(1) as f64).into()
            }
        }
    }

    /// The three disciplines Table 2 compares, in the paper's order.
    pub fn table2_set() -> [DisciplineKind; 3] {
        [
            DisciplineKind::Wfq,
            DisciplineKind::Fifo,
            DisciplineKind::FifoPlus,
        ]
    }
}

/// Attach the Appendix's on/off source (rate A, peak 2A, burst 5, `(A, 50)`
/// source policer) to an already-registered flow; returns the source's
/// shared counters.
pub fn attach_onoff(
    net: &mut Network,
    flow: FlowId,
    cfg: &PaperConfig,
    seed_index: u32,
) -> SharedSourceStats {
    let source = OnOffSource::new(
        flow,
        OnOffConfig::paper(cfg.avg_rate_pps, cfg.flow_seed(seed_index)),
    );
    let stats = source.stats();
    net.add_agent(Box::new(source));
    stats
}

/// The service class Tables 1 and 2 use for their undifferentiated
/// real-time flows: a single predicted class (priority 0).  The choice only
/// affects real-time-utilization bookkeeping — FIFO, WFQ and FIFO+ do not
/// look at the class.
pub fn realtime_class() -> ServiceClass {
    ServiceClass::Predicted { priority: 0 }
}

/// Every scheduler label an experiment row can carry (the union of
/// [`DisciplineKind::label`] and
/// [`DisciplineSpec::label`](ispn_scenario::DisciplineSpec::label)).
const DISCIPLINE_LABELS: &[&str] = &[
    "FIFO",
    "WFQ",
    "FIFO+",
    "FIFO+ (EWMA)",
    "VirtualClock",
    "StrictPriority",
    "Unified",
];

/// Map a decoded label back to its `&'static` member of `pool` — the wire
/// decoders need this because experiment rows store their labels as static
/// strings.  Unknown labels are a schema error (`what` names the label
/// kind in the message), not a panic: a worker from a different build must
/// not crash the parent.
pub fn intern_label(
    label: &str,
    pool: &'static [&'static str],
    what: &str,
) -> Result<&'static str, ispn_scenario::WireError> {
    pool.iter()
        .copied()
        .find(|known| *known == label)
        .ok_or_else(|| ispn_scenario::WireError::new(format!("unknown {what} label {label:?}")))
}

/// [`intern_label`] over the scheduler-label pool.
pub fn intern_discipline_label(label: &str) -> Result<&'static str, ispn_scenario::WireError> {
    intern_label(label, DISCIPLINE_LABELS, "discipline")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispn_sched::QueueDiscipline;

    #[test]
    fn labels_cover_every_kind() {
        for k in [
            DisciplineKind::Fifo,
            DisciplineKind::Wfq,
            DisciplineKind::FifoPlus,
            DisciplineKind::FifoPlusEwma,
            DisciplineKind::VirtualClock,
        ] {
            assert!(!k.label().is_empty());
            let d = k.build(&PaperConfig::paper(), 10);
            assert!(d.is_empty());
        }
    }

    /// Drift guard: every label the experiments can emit — every
    /// [`DisciplineKind`] and every `DisciplineSpec` variant — must
    /// intern, or distributed runs would poison points with "unknown
    /// discipline label" at decode while in-process runs keep working.
    #[test]
    fn discipline_pool_covers_every_emittable_label() {
        for k in [
            DisciplineKind::Fifo,
            DisciplineKind::Wfq,
            DisciplineKind::FifoPlus,
            DisciplineKind::FifoPlusEwma,
            DisciplineKind::VirtualClock,
        ] {
            assert_eq!(intern_discipline_label(k.label()), Ok(k.label()));
        }
        use ispn_scenario::DisciplineSpec;
        for spec in [
            DisciplineSpec::Fifo,
            DisciplineSpec::FifoPlus(Averaging::RunningMean),
            DisciplineSpec::FifoPlus(Averaging::Ewma(0.1)),
            DisciplineSpec::Wfq,
            DisciplineSpec::VirtualClock,
            DisciplineSpec::StrictPriority { classes: 2 },
            DisciplineSpec::Unified {
                priority_classes: 2,
                averaging: Averaging::RunningMean,
            },
        ] {
            assert_eq!(intern_discipline_label(spec.label()), Ok(spec.label()));
        }
        assert!(intern_discipline_label("EvilSched").is_err());
    }

    #[test]
    fn table2_set_is_the_papers_three() {
        let set = DisciplineKind::table2_set();
        assert_eq!(set[0].label(), "WFQ");
        assert_eq!(set[1].label(), "FIFO");
        assert_eq!(set[2].label(), "FIFO+");
    }
}
