//! Heterogeneous-mix sweep: per-class delay and jitter versus offered load
//! across all four disciplines.
//!
//! The paper compares disciplines on a homogeneous population of on/off
//! sources; the second scenario the declarative API unlocks mixes source
//! models the way a real integrated-services link would see them — CBR
//! "voice" circuits on guaranteed service, bursty on/off "video" on
//! Predicted-High, Poisson "transaction" traffic on Predicted-Low and a
//! greedy Poisson datagram background — and sweeps the number of flows per
//! class (the offered-load knob) under FIFO, FIFO+, WFQ and the unified
//! scheduler.  The interesting read-outs are the per-class *jitter* (CBR
//! circuits care about delay variance far more than mean) and how each
//! discipline splits the pain as the link saturates.

use ispn_core::TokenBucketSpec;
use ispn_net::PoliceAction;
use ispn_scenario::{
    json_escape, wire_f64, DisciplineSpec, FlowDef, JsonValue, MeasurementPlan, NullObserver,
    PointResult, RouteSpec, RunTelemetry, ScenarioBuilder, ScenarioSet, ServiceSpec, Sim,
    SourceSpec, SweepExec, SweepObserver, SweepReport, SweepRunner, WireError, WireResult,
};
use ispn_sched::Averaging;

use crate::config::PaperConfig;
use crate::mesh::{aggregate_class, ClassStats};
use crate::support::intern_discipline_label;
use crate::table3::{HIGH_PRIORITY_TARGET_PKT, LOW_PRIORITY_TARGET_PKT};

/// The four disciplines the sweep compares.
pub fn discipline_set() -> [DisciplineSpec; 4] {
    [
        DisciplineSpec::Fifo,
        DisciplineSpec::FifoPlus(Averaging::RunningMean),
        DisciplineSpec::Wfq,
        DisciplineSpec::Unified {
            priority_classes: 2,
            averaging: Averaging::RunningMean,
        },
    ]
}

/// One sweep point: one discipline at one load level.
#[derive(Debug, Clone)]
pub struct HetMixPoint {
    /// Discipline label.
    pub scheduler: &'static str,
    /// Flows per class.
    pub level: usize,
    /// Measured link utilization.
    pub utilization: f64,
    /// Per-class aggregates: Guaranteed-CBR, Predicted-High (on/off),
    /// Predicted-Low (Poisson), Datagram.
    pub classes: Vec<ClassStats>,
}

impl WireResult for HetMixPoint {
    fn to_wire_json(&self) -> String {
        format!(
            "{{\"scheduler\":\"{}\",\"level\":{},\"utilization\":{},\"classes\":{}}}",
            json_escape(self.scheduler),
            self.level,
            wire_f64(self.utilization),
            self.classes.to_wire_json(),
        )
    }

    fn from_wire_json(v: &JsonValue) -> Result<Self, WireError> {
        Ok(HetMixPoint {
            scheduler: intern_discipline_label(v.field("scheduler")?.as_str()?)?,
            level: v.field("level")?.as_usize()?,
            utilization: v.field("utilization")?.as_f64_or_nan()?,
            classes: Vec::from_wire_json(v.field("classes")?)?,
        })
    }
}

/// Build one (discipline, level) scenario: a single shared link carrying
/// `level` flows of each real-time class plus the datagram background.
fn build_point(cfg: &PaperConfig, spec: DisciplineSpec, level: usize) -> Sim {
    assert!(level >= 1);
    let pt = cfg.packet_time();
    let a = cfg.avg_rate_pps;
    let bucket = TokenBucketSpec::per_packets(a, 50.0, cfg.packet_bits);
    // A CBR circuit is not bursty: a clock rate 10 % above its constant
    // rate keeps the reservation honest without hoarding the link.
    let cbr_clock_bps = 1.1 * a * cfg.packet_bits as f64;

    let mut builder = ScenarioBuilder::chain(2)
        .link_profile(crate::fig1::Fig1Network::link_profile(cfg))
        .discipline(spec);
    // Guaranteed CBR circuits.
    for _ in 0..level {
        builder = builder.flow(
            FlowDef::new(
                RouteSpec::Span { first: 0, hops: 1 },
                ServiceSpec::Guaranteed {
                    clock_rate_bps: cbr_clock_bps,
                },
            )
            .source(SourceSpec::cbr(a, cfg.packet_bits)),
        );
    }
    // Predicted-High on/off video.
    for i in 0..level {
        builder = builder.flow(
            FlowDef::new(
                RouteSpec::Span { first: 0, hops: 1 },
                ServiceSpec::Predicted {
                    priority: 0,
                    bucket,
                    target_delay: pt.mul_f64(HIGH_PRIORITY_TARGET_PKT),
                    loss_rate: 0.001,
                    police: PoliceAction::Drop,
                },
            )
            .source(SourceSpec::onoff_paper(a, cfg.flow_seed(i as u32))),
        );
    }
    // Predicted-Low Poisson transactions.
    for i in 0..level {
        builder = builder.flow(
            FlowDef::new(
                RouteSpec::Span { first: 0, hops: 1 },
                ServiceSpec::Predicted {
                    priority: 1,
                    bucket,
                    target_delay: pt.mul_f64(LOW_PRIORITY_TARGET_PKT),
                    loss_rate: 0.001,
                    police: PoliceAction::Drop,
                },
            )
            .source(SourceSpec::poisson(
                a,
                cfg.packet_bits,
                cfg.flow_seed(1000 + i as u32),
            )),
        );
    }
    // The datagram background: a greedy Poisson source at twice the
    // per-flow rate.
    builder = builder.flow(
        FlowDef::new(RouteSpec::Span { first: 0, hops: 1 }, ServiceSpec::Datagram).source(
            SourceSpec::poisson(2.0 * a, cfg.packet_bits, cfg.flow_seed(2000)),
        ),
    );

    builder.build().expect("the mix scenario is valid")
}

/// Run one (discipline, level) point and aggregate the per-class delays.
pub fn run_point(cfg: &PaperConfig, spec: DisciplineSpec, level: usize) -> HetMixPoint {
    let mut sim = build_point(cfg, spec, level);
    sim.run_until(cfg.duration);
    let report = sim.report(&MeasurementPlan::default());

    let classes = vec![
        aggregate_class(&report.flows[0..level], cfg, "Guaranteed-CBR"),
        aggregate_class(&report.flows[level..2 * level], cfg, "Predicted-High"),
        aggregate_class(&report.flows[2 * level..3 * level], cfg, "Predicted-Low"),
        aggregate_class(&report.flows[3 * level..], cfg, "Datagram"),
    ];
    HetMixPoint {
        scheduler: spec.label(),
        level,
        utilization: report.links[0].utilization,
        classes,
    }
}

/// Run the unified-scheduler mix at level 1 with run telemetry enabled
/// and return the engine's counters (the probe behind the `ispn-bench`
/// snapshot harness).
pub fn telemetry_probe(cfg: &PaperConfig) -> RunTelemetry {
    let unified = discipline_set()[3];
    let mut sim = build_point(cfg, unified, 1);
    sim.run_until(cfg.duration);
    sim.report(&MeasurementPlan::default().with_run_telemetry())
        .telemetry
        .expect("run telemetry was requested")
}

/// The cartesian (discipline × level) axis set of the sweep.
pub fn scenario_set(levels: &[usize]) -> ScenarioSet<(DisciplineSpec, usize)> {
    ScenarioSet::over("discipline", discipline_set()).by("level", levels.to_vec())
}

/// The full sweep through the given runner, streaming each point's report
/// to `observer` as it completes; the checked, axis-tagged reports feed
/// [`crate::report::render_hetmix`].
pub fn sweep_reports(
    cfg: &PaperConfig,
    levels: &[usize],
    runner: &SweepRunner,
    observer: &dyn SweepObserver<HetMixPoint>,
) -> Vec<SweepReport<PointResult<HetMixPoint>>> {
    sweep_exec(cfg, levels, &SweepExec::InProcess(*runner), observer)
}

/// [`sweep_reports`] generalized over the execution level: in-process
/// threads or distributed worker subprocesses, byte-identical either way.
pub fn sweep_exec(
    cfg: &PaperConfig,
    levels: &[usize],
    exec: &SweepExec,
    observer: &dyn SweepObserver<HetMixPoint>,
) -> Vec<SweepReport<PointResult<HetMixPoint>>> {
    exec.run_streaming(
        &scenario_set(levels),
        |&(spec, level)| run_point(cfg, spec, level),
        observer,
    )
}

/// Serve heterogeneous-mix sweep points to a distributed parent over
/// stdin/stdout (the `hetmix` bin's `--sweep-worker` mode; the load levels
/// travel through the shared `ISPN_FAST` configuration).
pub fn serve_worker(cfg: &PaperConfig, levels: &[usize]) -> std::io::Result<()> {
    ispn_scenario::serve_worker(&scenario_set(levels), |&(spec, level)| {
        run_point(cfg, spec, level)
    })
}

/// Serve heterogeneous-mix sweep points over a TCP listener bound to
/// `addr` (the `hetmix` bin's `--serve` mode; the load levels travel
/// through the shared `ISPN_FAST` configuration).
pub fn serve_listener(cfg: &PaperConfig, levels: &[usize], addr: &str) -> std::io::Result<()> {
    ispn_scenario::serve_listener(addr, &scenario_set(levels), |&(spec, level)| {
        run_point(cfg, spec, level)
    })
}

/// The full sweep through the given runner: every discipline at every load
/// level (discipline outer, level inner), each point a self-contained
/// scenario fanned across the runner's threads.
pub fn sweep_with(cfg: &PaperConfig, levels: &[usize], runner: &SweepRunner) -> Vec<HetMixPoint> {
    sweep_reports(cfg, levels, runner, &NullObserver)
        .into_iter()
        .map(|r| r.expect_ok().result)
        .collect()
}

/// The full sweep, run serially (the historical entry point; the `hetmix`
/// binary fans it across threads).
pub fn sweep(cfg: &PaperConfig, levels: &[usize]) -> Vec<HetMixPoint> {
    sweep_with(cfg, levels, &SweepRunner::serial())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispn_sim::SimTime;

    fn short() -> PaperConfig {
        PaperConfig {
            duration: SimTime::from_secs(20),
            ..PaperConfig::paper()
        }
    }

    #[test]
    fn load_rises_with_level() {
        let cfg = short();
        let light = run_point(&cfg, DisciplineSpec::Fifo, 1);
        let heavy = run_point(&cfg, DisciplineSpec::Fifo, 3);
        assert!(
            heavy.utilization > light.utilization + 0.2,
            "{} vs {}",
            heavy.utilization,
            light.utilization
        );
        assert_eq!(light.classes.len(), 4);
        assert_eq!(light.classes[3].flows, 1);
    }

    #[test]
    fn unified_protects_cbr_jitter_under_load() {
        let cfg = short();
        let fifo = run_point(&cfg, DisciplineSpec::Fifo, 3);
        let unified = run_point(
            &cfg,
            DisciplineSpec::Unified {
                priority_classes: 2,
                averaging: Averaging::RunningMean,
            },
            3,
        );
        let cbr = |p: &HetMixPoint| p.classes[0].jitter;
        // Under FIFO the CBR circuits inherit the bursts of everyone else;
        // the unified scheduler isolates them.
        assert!(
            cbr(&unified) < cbr(&fifo),
            "unified {} vs fifo {}",
            cbr(&unified),
            cbr(&fifo)
        );
    }

    #[test]
    fn sweep_covers_every_discipline_and_level() {
        let cfg = PaperConfig {
            duration: SimTime::from_secs(5),
            ..PaperConfig::paper()
        };
        let points = sweep(&cfg, &[1, 2]);
        assert_eq!(points.len(), 8);
        let schedulers: std::collections::BTreeSet<&str> =
            points.iter().map(|p| p.scheduler).collect();
        assert_eq!(schedulers.len(), 4);
    }
}
