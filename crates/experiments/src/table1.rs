//! Table 1: WFQ vs FIFO on a single shared link.
//!
//! "We consider a single link being utilized by 10 flows, each having the
//! same statistical generation process.  In Table 1 we show the mean and
//! 99.9'th percentile queueing delays for a sample flow (the data from the
//! various flows are similar) under each of the two scheduling algorithms.
//! Note that while the mean delays are about the same for the two
//! algorithms, the 99.9'th percentile delays are significantly smaller under
//! the FIFO algorithm."  The link runs at 83.5 % utilization.

use ispn_scenario::{
    json_escape, wire_f64, FlowDef, JsonValue, LinkProfile, MeasurementPlan, NullObserver,
    PointResult, RunTelemetry, ScenarioBuilder, ScenarioSet, Sim, SourceSpec, SweepExec,
    SweepObserver, SweepReport, SweepRunner, WireError, WireResult,
};
use ispn_sim::SimTime;

use crate::config::PaperConfig;
use crate::support::{intern_discipline_label, DisciplineKind};

/// Number of flows sharing the single link.
pub const NUM_FLOWS: usize = 10;

/// One row of Table 1 (delays in packet transmission times).
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Scheduling discipline.
    pub scheduler: &'static str,
    /// Mean queueing delay of the sample flow.
    pub mean: f64,
    /// 99.9th-percentile queueing delay of the sample flow.
    pub p999: f64,
    /// Mean over all ten flows (not in the paper's table; reported for
    /// completeness).
    pub all_flows_mean: f64,
    /// Largest per-flow 99.9th percentile over all ten flows.
    pub all_flows_worst_p999: f64,
    /// Measured link utilization.
    pub utilization: f64,
}

impl WireResult for Table1Row {
    fn to_wire_json(&self) -> String {
        format!(
            "{{\"scheduler\":\"{}\",\"mean\":{},\"p999\":{},\"all_flows_mean\":{},\
             \"all_flows_worst_p999\":{},\"utilization\":{}}}",
            json_escape(self.scheduler),
            wire_f64(self.mean),
            wire_f64(self.p999),
            wire_f64(self.all_flows_mean),
            wire_f64(self.all_flows_worst_p999),
            wire_f64(self.utilization),
        )
    }

    fn from_wire_json(v: &JsonValue) -> Result<Self, WireError> {
        Ok(Table1Row {
            scheduler: intern_discipline_label(v.field("scheduler")?.as_str()?)?,
            mean: v.field("mean")?.as_f64_or_nan()?,
            p999: v.field("p999")?.as_f64_or_nan()?,
            all_flows_mean: v.field("all_flows_mean")?.as_f64_or_nan()?,
            all_flows_worst_p999: v.field("all_flows_worst_p999")?.as_f64_or_nan()?,
            utilization: v.field("utilization")?.as_f64_or_nan()?,
        })
    }
}

/// Result of the Table-1 experiment.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// One row per scheduling discipline.
    pub rows: Vec<Table1Row>,
}

/// Build the single-link scenario under one discipline — a two-switch
/// chain with ten identically distributed on/off flows, declared through
/// the scenario API.
fn build_single_link(cfg: &PaperConfig, discipline: DisciplineKind) -> Sim {
    ScenarioBuilder::chain(2)
        .link_profile(LinkProfile {
            rate_bps: cfg.link_rate_bps,
            propagation: SimTime::ZERO,
            buffer_packets: cfg.buffer_packets,
        })
        .discipline(discipline.spec())
        .flows((0..NUM_FLOWS).map(|i| {
            FlowDef::best_effort_realtime(0, 1).source(SourceSpec::onoff_paper(
                cfg.avg_rate_pps,
                cfg.flow_seed(i as u32),
            ))
        }))
        .build()
        .expect("the Table-1 scenario is valid")
}

/// Run the single-link scenario under one discipline and summarize the
/// sample flow's delays into a table row.
pub fn run_single_link(cfg: &PaperConfig, discipline: DisciplineKind) -> Table1Row {
    let mut sim = build_single_link(cfg, discipline);

    sim.run_until(cfg.duration);

    let pt = cfg.packet_time().as_secs_f64();
    let flows = sim.flows().to_vec();
    let net = sim.network_mut();
    let sample = net.monitor_mut().flow_report(flows[0]);
    let mut mean_sum = 0.0;
    let mut worst_p999: f64 = 0.0;
    for &f in &flows {
        let r = net.monitor_mut().flow_report(f);
        mean_sum += r.mean_delay;
        worst_p999 = worst_p999.max(r.p999_delay);
    }
    Table1Row {
        scheduler: discipline.label(),
        mean: sample.mean_delay / pt,
        p999: sample.p999_delay / pt,
        all_flows_mean: mean_sum / NUM_FLOWS as f64 / pt,
        all_flows_worst_p999: worst_p999 / pt,
        utilization: net.monitor().link_report(0).utilization,
    }
}

/// Run the WFQ single-link scenario with run telemetry enabled and return
/// the engine's counters (the probe behind the `ispn-bench` snapshot
/// harness).
pub fn telemetry_probe(cfg: &PaperConfig) -> RunTelemetry {
    let mut sim = build_single_link(cfg, DisciplineKind::Wfq);
    sim.run_until(cfg.duration);
    sim.report(&MeasurementPlan::default().with_run_telemetry())
        .telemetry
        .expect("run telemetry was requested")
}

/// The discipline axis of the Table-1 sweep (WFQ and FIFO, in the paper's
/// order).
pub fn scenario_set() -> ScenarioSet<(DisciplineKind,)> {
    ScenarioSet::over("discipline", [DisciplineKind::Wfq, DisciplineKind::Fifo])
}

/// Run the Table-1 discipline sweep through the given runner, streaming
/// each point's report to `observer` the moment it completes; the checked,
/// axis-tagged reports feed [`crate::report::render_table1`], and a
/// panicking point surfaces as its point's `Err` instead of aborting the
/// sweep.
pub fn run_reports(
    cfg: &PaperConfig,
    runner: &SweepRunner,
    observer: &dyn SweepObserver<Table1Row>,
) -> Vec<SweepReport<PointResult<Table1Row>>> {
    exec_reports(cfg, &SweepExec::InProcess(*runner), observer)
}

/// [`run_reports`] generalized over the execution level: in-process
/// threads or distributed worker subprocesses, byte-identical either way.
pub fn exec_reports(
    cfg: &PaperConfig,
    exec: &SweepExec,
    observer: &dyn SweepObserver<Table1Row>,
) -> Vec<SweepReport<PointResult<Table1Row>>> {
    exec.run_streaming(
        &scenario_set(),
        |&(discipline,)| run_single_link(cfg, discipline),
        observer,
    )
}

/// Serve Table-1 sweep points to a distributed parent over stdin/stdout
/// (the `table1` bin's `--sweep-worker` mode; the parent passes the same
/// configuration flags so both sides build the same sweep).
pub fn serve_worker(cfg: &PaperConfig) -> std::io::Result<()> {
    ispn_scenario::serve_worker(&scenario_set(), |&(discipline,)| {
        run_single_link(cfg, discipline)
    })
}

/// Serve Table-1 sweep points over a TCP listener bound to `addr` (the
/// `table1` bin's `--serve` mode; one session per accepted connection,
/// serving until the process is killed).
pub fn serve_listener(cfg: &PaperConfig, addr: &str) -> std::io::Result<()> {
    ispn_scenario::serve_listener(addr, &scenario_set(), |&(discipline,)| {
        run_single_link(cfg, discipline)
    })
}

/// Run the full Table-1 comparison through the given sweep runner; each
/// discipline is a self-contained scenario point, so the two runs
/// parallelize and the rows come back in the paper's order regardless of
/// thread count.
pub fn run_with(cfg: &PaperConfig, runner: &SweepRunner) -> Table1 {
    Table1 {
        rows: run_reports(cfg, runner, &NullObserver)
            .into_iter()
            .map(|r| r.expect_ok().result)
            .collect(),
    }
}

/// Run the full Table-1 comparison serially.
pub fn run(cfg: &PaperConfig) -> Table1 {
    run_with(cfg, &SweepRunner::serial())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shortened_run_reproduces_the_tables_shape() {
        // 40 simulated seconds are enough for the qualitative claims: the
        // means are comparable and FIFO's tail is no worse than WFQ's.
        let cfg = PaperConfig::fast();
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 2);
        let wfq = &t.rows[0];
        let fifo = &t.rows[1];
        assert_eq!(wfq.scheduler, "WFQ");
        assert_eq!(fifo.scheduler, "FIFO");
        // The link really is loaded at roughly 83.5 %.
        assert!(
            (wfq.utilization - 0.835).abs() < 0.05,
            "utilization {}",
            wfq.utilization
        );
        // Delays are positive and the tail exceeds the mean.
        for row in &t.rows {
            assert!(row.mean > 0.5, "{row:?}");
            assert!(row.p999 > row.mean, "{row:?}");
        }
        // Means within a factor of each other; FIFO tail not worse than WFQ.
        assert!((wfq.mean - fifo.mean).abs() / wfq.mean < 0.5);
        assert!(
            fifo.p999 <= wfq.p999 * 1.15,
            "FIFO {} vs WFQ {}",
            fifo.p999,
            wfq.p999
        );
    }

    #[test]
    fn rows_round_trip_the_wire() {
        let row = Table1Row {
            scheduler: "WFQ",
            mean: 3.16,
            p999: 53.86,
            all_flows_mean: 1.0 / 3.0,
            all_flows_worst_p999: 60.0,
            utilization: 0.835,
        };
        let json = row.to_wire_json();
        let back = Table1Row::from_wire_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back.to_wire_json(), json);
        assert_eq!(back.scheduler, "WFQ");
        assert_eq!(back.all_flows_mean, row.all_flows_mean);
        // Unknown scheduler labels are schema errors, not panics.
        let hostile = json.replace("WFQ", "EvilSched");
        assert!(Table1Row::from_wire_json(&JsonValue::parse(&hostile).unwrap()).is_err());
    }

    #[test]
    fn single_run_is_deterministic() {
        let cfg = PaperConfig {
            duration: SimTime::from_secs(20),
            ..PaperConfig::paper()
        };
        let a = run_single_link(&cfg, DisciplineKind::Fifo);
        let b = run_single_link(&cfg, DisciplineKind::Fifo);
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.p999, b.p999);
        assert_eq!(a.utilization, b.utilization);
    }
}
