//! FIFO+ — multi-hop sharing (Section 6).
//!
//! "In FIFO+, we try to induce FIFO-style sharing (equal jitter for all
//! sources in the aggregate class) across all the hops along the path to
//! minimize jitter.  We do this as follows.  For each hop, we measure the
//! average delay seen by packets in each priority class at that switch.  We
//! then compute for each packet the difference between its particular delay
//! and the class average.  We add (or subtract) this difference to a field
//! in the header of the packet, which thus accumulates the total offset for
//! this packet from the average for its class.  This field allows each
//! switch to compute when the packet should have arrived if it were indeed
//! given average service.  The switch then inserts the packet in the queue
//! in the order as if it arrived at this expected time."
//!
//! Concretely, at each hop this discipline:
//!
//! 1. orders the queue by *expected arrival time* = actual arrival −
//!    accumulated offset (ties broken by actual arrival order),
//! 2. when a packet is selected for transmission, measures its queueing
//!    delay at this hop, updates the class-average estimate, and adds
//!    `delay − average` to the packet's offset field.

use std::collections::BinaryHeap;

use ispn_core::Packet;
use ispn_sim::SimTime;

use crate::disc::{Dequeued, QueueDiscipline, SchedContext};

/// How the per-hop class-average delay is estimated.
///
/// The paper just says "we measure the average delay seen by packets in
/// each priority class at that switch"; both a running mean over the whole
/// run and an exponentially weighted moving average are reasonable
/// readings, and the ablation benchmarks compare them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Averaging {
    /// Running mean over every packet the class has sent at this hop.
    RunningMean,
    /// Exponentially weighted moving average with the given gain in (0, 1]
    /// (e.g. 1/16); adapts faster when conditions change.
    Ewma(f64),
}

#[derive(Debug, Clone)]
struct DelayAverage {
    kind: Averaging,
    value_secs: f64,
    count: u64,
}

impl DelayAverage {
    fn new(kind: Averaging) -> Self {
        if let Averaging::Ewma(g) = kind {
            assert!(g > 0.0 && g <= 1.0, "EWMA gain must be in (0, 1]");
        }
        DelayAverage {
            kind,
            value_secs: 0.0,
            count: 0,
        }
    }

    /// Current estimate of the class-average delay (seconds).
    fn current(&self) -> f64 {
        self.value_secs
    }

    fn update(&mut self, delay_secs: f64) {
        self.count += 1;
        match self.kind {
            Averaging::RunningMean => {
                self.value_secs += (delay_secs - self.value_secs) / self.count as f64;
            }
            Averaging::Ewma(g) => {
                if self.count == 1 {
                    self.value_secs = delay_secs;
                } else {
                    self.value_secs += g * (delay_secs - self.value_secs);
                }
            }
        }
    }
}

/// The heap's sift element: just the ordering key and a payload slot.
/// Keeping the `(Packet, SchedContext)` payload out of the heap means a
/// sift moves 24-byte keys instead of whole packets.
#[derive(Debug, Clone, Copy)]
struct HeapKey {
    expected_arrival: SimTime,
    seq: u64,
    /// Index of the payload in the slab (not part of the ordering).
    slot: u32,
}

impl PartialEq for HeapKey {
    fn eq(&self, other: &Self) -> bool {
        self.expected_arrival == other.expected_arrival && self.seq == other.seq
    }
}
impl Eq for HeapKey {}
impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest expected arrival
        // (then earliest insertion) is popped first.
        (other.expected_arrival, other.seq).cmp(&(self.expected_arrival, self.seq))
    }
}

/// The FIFO+ discipline for a single class at a single hop.
///
/// Storage note: unlike the per-lane FIFO disciplines, FIFO+ keeps a
/// `BinaryHeap` rather than drawing from the shared segment pool — its
/// order is a priority order over *all* queued packets, not per-lane
/// FIFO, so pooled FIFO rings buy nothing here.  The heap sifts compact
/// [`HeapKey`]s while the packets sit still in a slot slab, and both
/// backing `Vec`s retain their high-water capacity across pops, which
/// gives the same zero-steady-state-allocation property the pool
/// provides elsewhere.
#[derive(Debug)]
pub struct FifoPlus {
    heap: BinaryHeap<HeapKey>,
    /// Payload slab, indexed by [`HeapKey::slot`]; never shrinks.
    payloads: Vec<(Packet, SchedContext)>,
    /// Recycled payload slots.
    free_slots: Vec<u32>,
    seq: u64,
    average: DelayAverage,
    /// Whether to write the `delay − average` difference back into the
    /// packet header.  Disabling this (while keeping expected-arrival
    /// ordering) degrades FIFO+ to plain FIFO semantics for downstream hops
    /// and is used by the ablation experiments.
    update_offsets: bool,
}

impl Default for FifoPlus {
    fn default() -> Self {
        Self::new(Averaging::RunningMean)
    }
}

impl FifoPlus {
    /// Create a FIFO+ queue with the chosen averaging method.
    pub fn new(averaging: Averaging) -> Self {
        FifoPlus {
            heap: BinaryHeap::new(),
            payloads: Vec::new(),
            free_slots: Vec::new(),
            seq: 0,
            average: DelayAverage::new(averaging),
            update_offsets: true,
        }
    }

    /// Enable or disable writing jitter offsets into departing packets.
    pub fn set_update_offsets(&mut self, update: bool) {
        self.update_offsets = update;
    }

    /// The current estimate of the class-average queueing delay at this hop.
    pub fn average_delay(&self) -> SimTime {
        SimTime::from_secs_f64(self.average.current().max(0.0))
    }

    /// Number of packets whose delay has been folded into the average.
    pub fn measured_count(&self) -> u64 {
        self.average.count
    }
}

impl QueueDiscipline for FifoPlus {
    fn enqueue(&mut self, _now: SimTime, packet: Packet, ctx: SchedContext) {
        let expected_arrival = packet.expected_arrival(ctx.arrival);
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.payloads[s as usize] = (packet, ctx);
                s
            }
            None => {
                self.payloads.push((packet, ctx));
                (self.payloads.len() - 1) as u32
            }
        };
        self.heap.push(HeapKey {
            expected_arrival,
            seq: self.seq,
            slot,
        });
        self.seq += 1;
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Dequeued> {
        let key = self.heap.pop()?;
        let (mut packet, ctx) = self.payloads[key.slot as usize];
        self.free_slots.push(key.slot);
        let arrival = ctx.arrival;
        // Queueing delay experienced at this hop (waiting time before the
        // link starts transmitting the packet).
        let delay_secs = now.saturating_sub(arrival).as_secs_f64();
        let avg_before = self.average.current();
        self.average.update(delay_secs);
        if self.update_offsets {
            let diff_ns = ((delay_secs - avg_before) * 1e9).round() as i64;
            packet.accumulate_offset(diff_ns);
        }
        Some(Dequeued {
            packet,
            arrival,
            class: ctx.class,
        })
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn name(&self) -> &'static str {
        "FIFO+"
    }

    fn state_bytes(&self) -> u64 {
        (self.heap.len() * std::mem::size_of::<HeapKey>()
            + self.payloads.len() * std::mem::size_of::<(Packet, SchedContext)>()
            + self.free_slots.len() * std::mem::size_of::<u32>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispn_core::{FlowId, ServiceClass};

    const PKT: u64 = 1000;

    fn pkt(flow: u32, seq: u64) -> Packet {
        Packet::data(FlowId(flow), seq, PKT, SimTime::ZERO)
    }

    fn ctx(t: SimTime) -> SchedContext {
        SchedContext::new(ServiceClass::Predicted { priority: 0 }, t)
    }

    #[test]
    fn zero_offset_packets_behave_like_fifo() {
        let mut q = FifoPlus::default();
        for (i, ms) in [1u64, 2, 3].iter().enumerate() {
            let t = SimTime::from_millis(*ms);
            q.enqueue(t, pkt(i as u32, 0), ctx(t));
        }
        let order: Vec<u32> = (0..3)
            .map(|_| q.dequeue(SimTime::from_millis(5)).unwrap().packet.flow.0)
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn positive_offset_jumps_ahead() {
        // A packet that has been unlucky upstream (positive offset) gets
        // scheduled as if it had arrived earlier, overtaking a packet that
        // actually arrived before it.
        let mut q = FifoPlus::default();
        let t1 = SimTime::from_millis(10);
        q.enqueue(t1, pkt(1, 0), ctx(t1));
        let t2 = SimTime::from_millis(11);
        let mut unlucky = pkt(2, 0);
        unlucky.jitter_offset_ns = 5_000_000; // 5 ms of accumulated bad luck
        q.enqueue(t2, unlucky, ctx(t2));
        let first = q.dequeue(SimTime::from_millis(12)).unwrap();
        assert_eq!(first.packet.flow, FlowId(2));
    }

    #[test]
    fn negative_offset_waits_its_turn() {
        // A packet that has been lucky upstream (negative offset) yields to
        // one that arrived slightly later.
        let mut q = FifoPlus::default();
        let t1 = SimTime::from_millis(10);
        let mut lucky = pkt(1, 0);
        lucky.jitter_offset_ns = -5_000_000;
        q.enqueue(t1, lucky, ctx(t1));
        let t2 = SimTime::from_millis(12);
        q.enqueue(t2, pkt(2, 0), ctx(t2));
        let first = q.dequeue(SimTime::from_millis(13)).unwrap();
        assert_eq!(first.packet.flow, FlowId(2));
    }

    #[test]
    fn offset_accumulates_delay_minus_average() {
        let mut q = FifoPlus::new(Averaging::RunningMean);
        // First packet: waits 4 ms; the average before it was 0, so its
        // offset becomes +4 ms.
        let t = SimTime::from_millis(0);
        q.enqueue(t, pkt(1, 0), ctx(t));
        let d = q.dequeue(SimTime::from_millis(4)).unwrap();
        assert_eq!(d.packet.jitter_offset_ns, 4_000_000);
        // Second packet: waits 1 ms; the average is now 4 ms, so its offset
        // becomes 1 − 4 = −3 ms.
        let t = SimTime::from_millis(10);
        q.enqueue(t, pkt(1, 1), ctx(t));
        let d = q.dequeue(SimTime::from_millis(11)).unwrap();
        assert_eq!(d.packet.jitter_offset_ns, -3_000_000);
        assert_eq!(q.measured_count(), 2);
        // Running mean of 4 ms and 1 ms.
        assert!((q.average_delay().as_millis_f64() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn ewma_tracks_recent_delays() {
        let mut q = FifoPlus::new(Averaging::Ewma(0.5));
        for i in 0..4u64 {
            let t = SimTime::from_millis(10 * i);
            q.enqueue(t, pkt(0, i), ctx(t));
            let _ = q.dequeue(t + SimTime::from_millis(4)).unwrap();
        }
        assert!((q.average_delay().as_millis_f64() - 4.0).abs() < 1e-9);
        // A sudden change moves the EWMA halfway.
        let t = SimTime::from_millis(100);
        q.enqueue(t, pkt(0, 9), ctx(t));
        let _ = q.dequeue(t + SimTime::from_millis(8)).unwrap();
        assert!((q.average_delay().as_millis_f64() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn disabling_offset_updates_keeps_headers_clean() {
        let mut q = FifoPlus::default();
        q.set_update_offsets(false);
        let t = SimTime::ZERO;
        q.enqueue(t, pkt(1, 0), ctx(t));
        let d = q.dequeue(SimTime::from_millis(7)).unwrap();
        assert_eq!(d.packet.jitter_offset_ns, 0);
    }

    #[test]
    #[should_panic]
    fn bad_ewma_gain_rejected() {
        let _ = FifoPlus::new(Averaging::Ewma(0.0));
    }

    #[test]
    fn empty_dequeue_is_none() {
        let mut q = FifoPlus::default();
        assert!(q.dequeue(SimTime::ZERO).is_none());
        assert!(q.is_empty());
        assert_eq!(q.name(), "FIFO+");
    }
}
