//! # ispn-sched — the CSZ'92 packet scheduling mechanisms
//!
//! The paper's mechanism is built from two distinct principles:
//!
//! * **isolation** — protecting flows from each other, which is mandatory
//!   for any commitment ("the network cannot make any commitments if it
//!   cannot prevent the unexpected behavior of one source from disrupting
//!   others"); WFQ provides it by giving every flow its own share,
//! * **sharing** — mixing traffic of a class so bursts are multiplexed and
//!   everyone's post-facto jitter shrinks; FIFO provides it at a single hop
//!   and FIFO+ extends it across hops.
//!
//! This crate implements every discipline the paper discusses plus the
//! unified scheduler of Section 7 that nests sharing inside isolation:
//!
//! | Type | Paper role |
//! |---|---|
//! | [`Fifo`] | the sharing discipline of Section 5 |
//! | [`Wfq`] | weighted fair queueing / PGPS (Section 4, guaranteed service) |
//! | [`VirtualClock`] | the closely related baseline of Zhang (Section 4 related work; ablations) |
//! | [`FifoPlus`] | FIFO+ multi-hop sharing (Section 6) |
//! | [`StrictPriority`] | jitter shifting between predicted classes (Sections 5, 7) |
//! | [`Unified`] | the full Section-7 scheduler: WFQ isolation around priority + FIFO+ sharing with datagram traffic underneath |
//!
//! All disciplines implement [`QueueDiscipline`], are work-conserving, and
//! are exercised by a shared conformance test-suite
//! ([`conformance`](crate::conformance) — also usable by downstream crates
//! that implement their own disciplines).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod conformance;
pub mod disc;
pub mod dispatch;
pub mod fifo;
pub mod fifo_plus;
pub mod gps;
pub mod priority;
pub mod probe;
pub mod unified;
pub mod virtual_clock;
pub mod wfq;

pub use disc::{Dequeued, GuaranteedInstall, QueueDiscipline, SchedContext};
pub use dispatch::Discipline;
pub use fifo::Fifo;
pub use fifo_plus::{Averaging, FifoPlus};
pub use gps::GpsClock;
pub use priority::StrictPriority;
pub use probe::{class_bucket, ProbeStats, Probed};
pub use unified::Unified;
pub use virtual_clock::VirtualClock;
pub use wfq::Wfq;
