//! The VirtualClock discipline (Zhang), the closest relative of WFQ.
//!
//! Section 4 of the paper: "The VirtualClock algorithm … involves an
//! extremely similar underlying packet scheduling algorithm, but was
//! expressly designed for a context where resources were preapportioned."
//! Each flow keeps an auxiliary clock that advances by `L/r` per packet but
//! never falls behind real time; packets are served in increasing stamp
//! order.  Compared with WFQ the stamps reference *real* time rather than
//! the GPS virtual time, which means a flow that was idle does not regain
//! its share retroactively but a backlogged flow can be punished for past
//! greediness.
//!
//! The unified scheduler does not use VirtualClock; it is provided as the
//! natural baseline for the ablation benchmarks (it was the other
//! preallocated-rate time-stamp scheme of the era) and to support the
//! related-work comparison in EXPERIMENTS.md.

use std::collections::VecDeque;

use ispn_core::{FlowId, Packet};
use ispn_sim::SimTime;

use crate::disc::{Dequeued, QueueDiscipline, SchedContext};

/// The sentinel in `slot_of` for flows with no lane.
const NO_SLOT: u32 = u32::MAX;

#[derive(Debug)]
struct VcFlow {
    flow: FlowId,
    rate_bps: f64,
    /// The auxiliary VirtualClock, in seconds.
    aux_clock: f64,
    queue: VecDeque<(Packet, SchedContext, f64)>,
}

/// The VirtualClock scheduler.
#[derive(Debug)]
pub struct VirtualClock {
    default_rate_bps: f64,
    /// Dense per-flow lanes (a flow's auxiliary clock must survive idle
    /// periods, so lanes are never freed once created).
    lanes: Vec<VcFlow>,
    /// `slot_of[flow.0]` is the flow's lane index, or `NO_SLOT`.
    slot_of: Vec<u32>,
    len: usize,
}

impl VirtualClock {
    /// Create a VirtualClock scheduler; unregistered flows receive
    /// `default_rate_bps`.
    pub fn new(default_rate_bps: f64) -> Self {
        assert!(default_rate_bps > 0.0);
        VirtualClock {
            default_rate_bps,
            lanes: Vec::new(),
            slot_of: Vec::new(),
            len: 0,
        }
    }

    /// The flow's lane, allocating one at the default rate if needed.
    fn lane_or_insert(&mut self, flow: FlowId) -> &mut VcFlow {
        if self.slot_of.len() <= flow.index() {
            self.slot_of.resize(flow.index() + 1, NO_SLOT);
        }
        if self.slot_of[flow.index()] == NO_SLOT {
            self.slot_of[flow.index()] = self.lanes.len() as u32;
            self.lanes.push(VcFlow {
                flow,
                rate_bps: self.default_rate_bps,
                aux_clock: 0.0,
                queue: VecDeque::new(),
            });
        }
        &mut self.lanes[self.slot_of[flow.index()] as usize]
    }

    /// Assign a flow its reserved average rate.
    pub fn set_rate(&mut self, flow: FlowId, rate_bps: f64) {
        assert!(rate_bps > 0.0);
        self.lane_or_insert(flow).rate_bps = rate_bps;
    }

    /// The rate assigned to a flow, if it has been seen or registered.
    pub fn rate(&self, flow: FlowId) -> Option<f64> {
        match self.slot_of.get(flow.index()) {
            Some(&s) if s != NO_SLOT => Some(self.lanes[s as usize].rate_bps),
            _ => None,
        }
    }
}

impl QueueDiscipline for VirtualClock {
    fn enqueue(&mut self, now: SimTime, packet: Packet, ctx: SchedContext) {
        let flow = self.lane_or_insert(packet.flow);
        // auxVC = max(now, auxVC) + L / r
        flow.aux_clock =
            flow.aux_clock.max(now.as_secs_f64()) + packet.size_bits as f64 / flow.rate_bps;
        let stamp = flow.aux_clock;
        flow.queue.push_back((packet, ctx, stamp));
        self.len += 1;
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<Dequeued> {
        if self.len == 0 {
            return None;
        }
        // Smallest stamp wins; exact ties go to the lowest flow id (the
        // winner the old ascending-map scan produced).
        let mut best: Option<(f64, FlowId, usize)> = None;
        for (slot, lane) in self.lanes.iter().enumerate() {
            if let Some(&(_, _, stamp)) = lane.queue.front() {
                let better = match best {
                    None => true,
                    Some((best_stamp, best_flow, _)) => {
                        stamp < best_stamp || (stamp == best_stamp && lane.flow < best_flow)
                    }
                };
                if better {
                    best = Some((stamp, lane.flow, slot));
                }
            }
        }
        let (_, _, slot) = best?;
        let (packet, ctx, _) = self.lanes[slot].queue.pop_front()?;
        self.len -= 1;
        Some(Dequeued {
            packet,
            arrival: ctx.arrival,
            class: ctx.class,
        })
    }

    fn len(&self) -> usize {
        self.len
    }

    fn name(&self) -> &'static str {
        "VirtualClock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispn_core::ServiceClass;

    const PKT: u64 = 1000;

    fn pkt(flow: u32, seq: u64) -> Packet {
        Packet::data(FlowId(flow), seq, PKT, SimTime::ZERO)
    }

    fn ctx(t: SimTime) -> SchedContext {
        SchedContext::new(ServiceClass::Guaranteed, t)
    }

    #[test]
    fn equal_rates_interleave() {
        let mut q = VirtualClock::new(100_000.0);
        let t = SimTime::ZERO;
        for s in 0..3 {
            q.enqueue(t, pkt(1, s), ctx(t));
            q.enqueue(t, pkt(2, s), ctx(t));
        }
        let order: Vec<u32> = (0..6)
            .map(|_| q.dequeue(t).unwrap().packet.flow.0)
            .collect();
        // Perfect alternation (ties broken by flow id).
        assert_eq!(order, vec![1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn higher_rate_flow_gets_more_service() {
        let mut q = VirtualClock::new(100_000.0);
        q.set_rate(FlowId(1), 300_000.0);
        q.set_rate(FlowId(2), 100_000.0);
        let t = SimTime::ZERO;
        for s in 0..20 {
            q.enqueue(t, pkt(1, s), ctx(t));
            q.enqueue(t, pkt(2, s), ctx(t));
        }
        let mut first_twelve = [0u32; 3];
        for _ in 0..12 {
            first_twelve[q.dequeue(t).unwrap().packet.flow.0 as usize] += 1;
        }
        assert!(first_twelve[1] >= 8, "{first_twelve:?}");
    }

    #[test]
    fn idle_flow_stamp_catches_up_to_real_time() {
        let mut q = VirtualClock::new(1_000_000.0);
        // A packet sent long after the flow's last activity is stamped
        // relative to `now`, not relative to the stale auxiliary clock.
        q.enqueue(SimTime::ZERO, pkt(1, 0), ctx(SimTime::ZERO));
        let _ = q.dequeue(SimTime::ZERO);
        q.enqueue(
            SimTime::from_secs(10),
            pkt(1, 1),
            ctx(SimTime::from_secs(10)),
        );
        q.enqueue(
            SimTime::from_secs(10),
            pkt(2, 0),
            ctx(SimTime::from_secs(10)),
        );
        // Flow 2's very first packet gets stamp 10.001 as well; tie broken
        // by flow id, so flow 1 first — the point is flow 1 is not stamped
        // at 0.002 (which would always win) nor punished into the future.
        let a = q.dequeue(SimTime::from_secs(10)).unwrap();
        let b = q.dequeue(SimTime::from_secs(10)).unwrap();
        assert_eq!(a.packet.flow, FlowId(1));
        assert_eq!(b.packet.flow, FlowId(2));
    }

    #[test]
    fn accessors() {
        let mut q = VirtualClock::new(50_000.0);
        assert_eq!(q.rate(FlowId(1)), None);
        q.enqueue(SimTime::ZERO, pkt(1, 0), ctx(SimTime::ZERO));
        assert_eq!(q.rate(FlowId(1)), Some(50_000.0));
        q.set_rate(FlowId(1), 80_000.0);
        assert_eq!(q.rate(FlowId(1)), Some(80_000.0));
        assert_eq!(q.name(), "VirtualClock");
        assert_eq!(q.len(), 1);
    }
}
