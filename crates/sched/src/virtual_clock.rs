//! The VirtualClock discipline (Zhang), the closest relative of WFQ.
//!
//! Section 4 of the paper: "The VirtualClock algorithm … involves an
//! extremely similar underlying packet scheduling algorithm, but was
//! expressly designed for a context where resources were preapportioned."
//! Each flow keeps an auxiliary clock that advances by `L/r` per packet but
//! never falls behind real time; packets are served in increasing stamp
//! order.  Compared with WFQ the stamps reference *real* time rather than
//! the GPS virtual time, which means a flow that was idle does not regain
//! its share retroactively but a backlogged flow can be punished for past
//! greediness.
//!
//! The unified scheduler does not use VirtualClock; it is provided as the
//! natural baseline for the ablation benchmarks (it was the other
//! preallocated-rate time-stamp scheme of the era) and to support the
//! related-work comparison in EXPERIMENTS.md.

use ispn_core::arena::{SegQueue, SegmentPool};
use ispn_core::{FlowId, Packet};
use ispn_sim::SimTime;

use crate::disc::{Dequeued, QueueDiscipline, SchedContext};

/// The sentinel in `slot_of` for flows with no lane.
const NO_SLOT: u32 = u32::MAX;

#[derive(Debug)]
struct VcFlow {
    flow: FlowId,
    rate_bps: f64,
    /// The auxiliary VirtualClock, in seconds.
    aux_clock: f64,
    /// Set by [`remove_flow`](QueueDiscipline::remove_flow) while the lane
    /// still has a backlog; `dequeue` frees the lane when it drains.
    retired: bool,
    queue: SegQueue<(Packet, SchedContext, f64)>,
    /// Stamp of the queue's head packet, mirrored out of the pool so the
    /// per-dequeue scan reads only lane-local data.  Meaningless (stale)
    /// while the queue is empty — refreshed on push-to-empty and after
    /// every pop.
    front_stamp: f64,
}

/// The VirtualClock scheduler.
#[derive(Debug)]
pub struct VirtualClock {
    default_rate_bps: f64,
    /// Shared pooled storage for every lane's packet queue.
    pool: SegmentPool<(Packet, SchedContext, f64)>,
    /// Dense per-flow lanes.  A lane of an *active* flow is never freed on
    /// idle — its auxiliary clock must survive idle periods — but explicit
    /// reservation teardown ([`remove_flow`](QueueDiscipline::remove_flow))
    /// recycles the lane (immediately if empty, else once the backlog
    /// drains), discarding the auxiliary clock: a flow that returns after
    /// teardown starts from a fresh clock, which is exactly the semantics
    /// of a new reservation.
    lanes: Vec<VcFlow>,
    /// `slot_of[flow.0]` is the flow's lane index, or `NO_SLOT`.
    slot_of: Vec<u32>,
    /// Recycled lane slots.
    free_lanes: Vec<u32>,
    len: usize,
}

impl VirtualClock {
    /// Create a VirtualClock scheduler; unregistered flows receive
    /// `default_rate_bps`.
    pub fn new(default_rate_bps: f64) -> Self {
        assert!(default_rate_bps > 0.0);
        VirtualClock {
            default_rate_bps,
            pool: SegmentPool::new(),
            lanes: Vec::new(),
            slot_of: Vec::new(),
            free_lanes: Vec::new(),
            len: 0,
        }
    }

    /// The flow's lane slot, allocating one (recycled or fresh) at the
    /// default rate if needed.
    fn slot_or_insert(&mut self, flow: FlowId) -> usize {
        if self.slot_of.len() <= flow.index() {
            self.slot_of.resize(flow.index() + 1, NO_SLOT);
        }
        if self.slot_of[flow.index()] == NO_SLOT {
            let slot = match self.free_lanes.pop() {
                Some(s) => {
                    let lane = &mut self.lanes[s as usize];
                    lane.flow = flow;
                    lane.rate_bps = self.default_rate_bps;
                    lane.aux_clock = 0.0;
                    lane.retired = false;
                    s as usize
                }
                None => {
                    self.lanes.push(VcFlow {
                        flow,
                        rate_bps: self.default_rate_bps,
                        aux_clock: 0.0,
                        retired: false,
                        queue: SegQueue::new(),
                        front_stamp: 0.0,
                    });
                    self.lanes.len() - 1
                }
            };
            self.slot_of[flow.index()] = slot as u32;
        }
        self.slot_of[flow.index()] as usize
    }

    /// Return `slot`'s storage to the pool and recycle the lane.
    fn free_lane(&mut self, slot: usize) {
        let flow = self.lanes[slot].flow;
        self.pool.release(&mut self.lanes[slot].queue);
        self.slot_of[flow.index()] = NO_SLOT;
        self.free_lanes.push(slot as u32);
    }

    /// Assign a flow its reserved average rate.
    pub fn set_rate(&mut self, flow: FlowId, rate_bps: f64) {
        assert!(rate_bps > 0.0);
        let slot = self.slot_or_insert(flow);
        self.lanes[slot].rate_bps = rate_bps;
    }

    /// The rate assigned to a flow, if it has been seen or registered.
    pub fn rate(&self, flow: FlowId) -> Option<f64> {
        match self.slot_of.get(flow.index()) {
            Some(&s) if s != NO_SLOT => Some(self.lanes[s as usize].rate_bps),
            _ => None,
        }
    }
}

impl QueueDiscipline for VirtualClock {
    fn enqueue(&mut self, now: SimTime, packet: Packet, ctx: SchedContext) {
        let slot = self.slot_or_insert(packet.flow);
        let lane = &mut self.lanes[slot];
        // A retired lane that receives fresh traffic before draining goes
        // back into service (the flow has evidently returned).
        lane.retired = false;
        // auxVC = max(now, auxVC) + L / r
        lane.aux_clock =
            lane.aux_clock.max(now.as_secs_f64()) + packet.size_bits as f64 / lane.rate_bps;
        let stamp = lane.aux_clock;
        if lane.queue.is_empty() {
            lane.front_stamp = stamp;
        }
        self.pool
            .push_back(&mut self.lanes[slot].queue, (packet, ctx, stamp));
        self.len += 1;
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<Dequeued> {
        if self.len == 0 {
            return None;
        }
        // Smallest stamp wins; exact ties go to the lowest flow id (the
        // winner the old ascending-map scan produced).
        let mut best: Option<(f64, FlowId, usize)> = None;
        for (slot, lane) in self.lanes.iter().enumerate() {
            if lane.queue.is_empty() {
                continue;
            }
            let stamp = lane.front_stamp;
            let better = match best {
                None => true,
                Some((best_stamp, best_flow, _)) => {
                    stamp < best_stamp || (stamp == best_stamp && lane.flow < best_flow)
                }
            };
            if better {
                best = Some((stamp, lane.flow, slot));
            }
        }
        let (_, _, slot) = best?;
        let (packet, ctx, _) = self.pool.pop_front(&mut self.lanes[slot].queue)?;
        self.len -= 1;
        if let Some(&(_, _, stamp)) = self.pool.front(&self.lanes[slot].queue) {
            self.lanes[slot].front_stamp = stamp;
        } else if self.lanes[slot].retired {
            self.free_lane(slot);
        }
        Some(Dequeued {
            packet,
            arrival: ctx.arrival,
            class: ctx.class,
        })
    }

    fn len(&self) -> usize {
        self.len
    }

    fn name(&self) -> &'static str {
        "VirtualClock"
    }

    fn remove_flow(&mut self, _now: SimTime, flow: FlowId) -> bool {
        match self.slot_of.get(flow.index()) {
            Some(&s) if s != NO_SLOT => {
                let slot = s as usize;
                if self.lanes[slot].queue.is_empty() {
                    self.free_lane(slot);
                } else {
                    // Queued packets keep their existing stamps; the lane is
                    // recycled by `dequeue` once the backlog drains.
                    self.lanes[slot].retired = true;
                }
                true
            }
            _ => false,
        }
    }

    fn state_bytes(&self) -> u64 {
        (self.slot_of.len() * std::mem::size_of::<u32>()
            + self.lanes.len() * std::mem::size_of::<VcFlow>()) as u64
            + self.pool.bytes()
    }

    fn reservation_bytes(&self) -> u64 {
        // Per-flow rate + auxiliary clock live inside the lane table.
        (self.lanes.len() * std::mem::size_of::<(f64, f64)>()) as u64
    }

    fn pool_grow_events(&self) -> u64 {
        self.pool.grow_events()
    }

    fn pool_segments_high_water(&self) -> u64 {
        self.pool.segments_high_water()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispn_core::ServiceClass;

    const PKT: u64 = 1000;

    fn pkt(flow: u32, seq: u64) -> Packet {
        Packet::data(FlowId(flow), seq, PKT, SimTime::ZERO)
    }

    fn ctx(t: SimTime) -> SchedContext {
        SchedContext::new(ServiceClass::Guaranteed, t)
    }

    #[test]
    fn equal_rates_interleave() {
        let mut q = VirtualClock::new(100_000.0);
        let t = SimTime::ZERO;
        for s in 0..3 {
            q.enqueue(t, pkt(1, s), ctx(t));
            q.enqueue(t, pkt(2, s), ctx(t));
        }
        let order: Vec<u32> = (0..6)
            .map(|_| q.dequeue(t).unwrap().packet.flow.0)
            .collect();
        // Perfect alternation (ties broken by flow id).
        assert_eq!(order, vec![1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn higher_rate_flow_gets_more_service() {
        let mut q = VirtualClock::new(100_000.0);
        q.set_rate(FlowId(1), 300_000.0);
        q.set_rate(FlowId(2), 100_000.0);
        let t = SimTime::ZERO;
        for s in 0..20 {
            q.enqueue(t, pkt(1, s), ctx(t));
            q.enqueue(t, pkt(2, s), ctx(t));
        }
        let mut first_twelve = [0u32; 3];
        for _ in 0..12 {
            first_twelve[q.dequeue(t).unwrap().packet.flow.0 as usize] += 1;
        }
        assert!(first_twelve[1] >= 8, "{first_twelve:?}");
    }

    #[test]
    fn idle_flow_stamp_catches_up_to_real_time() {
        let mut q = VirtualClock::new(1_000_000.0);
        // A packet sent long after the flow's last activity is stamped
        // relative to `now`, not relative to the stale auxiliary clock.
        q.enqueue(SimTime::ZERO, pkt(1, 0), ctx(SimTime::ZERO));
        let _ = q.dequeue(SimTime::ZERO);
        q.enqueue(
            SimTime::from_secs(10),
            pkt(1, 1),
            ctx(SimTime::from_secs(10)),
        );
        q.enqueue(
            SimTime::from_secs(10),
            pkt(2, 0),
            ctx(SimTime::from_secs(10)),
        );
        // Flow 2's very first packet gets stamp 10.001 as well; tie broken
        // by flow id, so flow 1 first — the point is flow 1 is not stamped
        // at 0.002 (which would always win) nor punished into the future.
        let a = q.dequeue(SimTime::from_secs(10)).unwrap();
        let b = q.dequeue(SimTime::from_secs(10)).unwrap();
        assert_eq!(a.packet.flow, FlowId(1));
        assert_eq!(b.packet.flow, FlowId(2));
    }

    #[test]
    fn accessors() {
        let mut q = VirtualClock::new(50_000.0);
        assert_eq!(q.rate(FlowId(1)), None);
        q.enqueue(SimTime::ZERO, pkt(1, 0), ctx(SimTime::ZERO));
        assert_eq!(q.rate(FlowId(1)), Some(50_000.0));
        q.set_rate(FlowId(1), 80_000.0);
        assert_eq!(q.rate(FlowId(1)), Some(80_000.0));
        assert_eq!(q.name(), "VirtualClock");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn remove_flow_recycles_lane_and_resets_clock() {
        let mut q = VirtualClock::new(100_000.0);
        q.set_rate(FlowId(1), 400_000.0);
        assert!(q.remove_flow(SimTime::ZERO, FlowId(1)));
        assert_eq!(q.rate(FlowId(1)), None);
        assert!(!q.remove_flow(SimTime::ZERO, FlowId(1)));
        // The freed lane is reused by the next flow that appears.
        q.enqueue(SimTime::ZERO, pkt(2, 0), ctx(SimTime::ZERO));
        assert_eq!(q.rate(FlowId(2)), Some(100_000.0));
        assert_eq!(q.dequeue(SimTime::ZERO).unwrap().packet.flow, FlowId(2));
    }

    #[test]
    fn remove_backlogged_flow_drains_then_frees() {
        let mut q = VirtualClock::new(100_000.0);
        let t = SimTime::ZERO;
        q.enqueue(t, pkt(1, 0), ctx(t));
        q.enqueue(t, pkt(1, 1), ctx(t));
        assert!(q.remove_flow(t, FlowId(1)));
        // Still drains in order at the original stamps…
        assert_eq!(q.dequeue(t).unwrap().packet.seq, 0);
        assert_eq!(q.rate(FlowId(1)), Some(100_000.0)); // lane still live
        assert_eq!(q.dequeue(t).unwrap().packet.seq, 1);
        // …and the lane is gone once the backlog is served.
        assert_eq!(q.rate(FlowId(1)), None);
        // A fresh packet re-registers from a clean auxiliary clock.
        q.enqueue(t, pkt(1, 2), ctx(t));
        assert_eq!(q.rate(FlowId(1)), Some(100_000.0));
    }
}
