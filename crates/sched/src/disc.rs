//! The queue-discipline interface shared by every scheduler.
//!
//! A discipline owns the packets queued at one switch output port and
//! decides, each time the link becomes free, which packet to transmit next.
//! The switch (in `ispn-net`) handles everything else: routing, buffer
//! limits, starting transmissions, and measurement.

use ispn_core::{Packet, ServiceClass};
use ispn_sim::SimTime;

/// Per-packet context the switch hands to the discipline at enqueue time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedContext {
    /// The service class this packet's flow receives *at this switch*
    /// (a predicted flow may sit in different priority classes at different
    /// switches — Section 7).
    pub class: ServiceClass,
    /// Arrival time at this output port.
    pub arrival: SimTime,
}

impl SchedContext {
    /// Convenience constructor.
    pub fn new(class: ServiceClass, arrival: SimTime) -> Self {
        SchedContext { class, arrival }
    }

    /// A datagram-class context (used widely in tests).
    pub fn datagram(arrival: SimTime) -> Self {
        SchedContext {
            class: ServiceClass::Datagram,
            arrival,
        }
    }
}

/// Outcome of [`QueueDiscipline::install_guaranteed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuaranteedInstall {
    /// Per-flow reservation state was installed (or updated).
    Installed,
    /// The discipline keeps no per-flow guaranteed state (class-based
    /// disciplines like FIFO and FIFO+); nothing needed doing.  The switch
    /// may still carry the flow, it just cannot isolate it.
    Unsupported,
    /// The discipline refused: installing this rate would break its
    /// invariants (e.g. guaranteed reservations reaching the link rate).
    /// Callers must treat this as an admission failure.
    Refused,
}

/// A packet handed back by [`QueueDiscipline::dequeue`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dequeued {
    /// The packet to transmit next.  Disciplines may have updated mutable
    /// header fields (FIFO+ updates the jitter offset here).
    pub packet: Packet,
    /// The packet's arrival time at this port (so the switch can compute the
    /// queueing delay without keeping its own map).
    pub arrival: SimTime,
    /// The class under which the packet was queued.
    pub class: ServiceClass,
}

impl Dequeued {
    /// The queueing (waiting) delay this packet experienced at this port if
    /// transmission starts at `now`.
    pub fn queueing_delay(&self, now: SimTime) -> SimTime {
        now.saturating_sub(self.arrival)
    }
}

/// A packet scheduling discipline for one output port.
///
/// Contract (checked by [`crate::conformance`]):
///
/// * every packet enqueued is eventually dequeued exactly once (no loss —
///   buffer management is the switch's job, not the discipline's),
/// * the discipline is work-conserving: `dequeue` returns `Some` whenever
///   `len() > 0`,
/// * `now` arguments are non-decreasing across calls.
pub trait QueueDiscipline {
    /// Accept a packet into the queue.
    fn enqueue(&mut self, now: SimTime, packet: Packet, ctx: SchedContext);

    /// Select and remove the next packet to transmit.
    fn dequeue(&mut self, now: SimTime) -> Option<Dequeued>;

    /// Number of packets currently queued.
    fn len(&self) -> usize;

    /// `true` if nothing is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A short human-readable name ("FIFO", "WFQ", …) used in experiment
    /// output.
    fn name(&self) -> &'static str;

    /// Install per-flow reservation state for a guaranteed flow with the
    /// given WFQ clock rate (Section 8: a guaranteed flow "only needs to
    /// specify the needed clock rate r").
    ///
    /// The default (for class-based disciplines, which have no per-flow
    /// state) reports [`GuaranteedInstall::Unsupported`]; disciplines that
    /// do track per-flow rates answer `Installed` or `Refused`, and a
    /// refusal must fail the admission that requested it.
    ///
    /// A refusal must also leave any rate previously installed for the
    /// flow fully intact: renegotiation re-installs an already-reserved
    /// flow at a new rate, and on `Refused` the caller keeps running the
    /// flow against its old reservation.  A discipline that cleared or
    /// partially applied state before refusing would desynchronize the
    /// flow's spec from the scheduler.
    fn install_guaranteed(&mut self, flow: ispn_core::FlowId, rate_bps: f64) -> GuaranteedInstall {
        let _ = (flow, rate_bps);
        GuaranteedInstall::Unsupported
    }

    /// Remove per-flow reservation state installed by
    /// [`install_guaranteed`](QueueDiscipline::install_guaranteed)
    /// (reservation teardown).  Returns `true` if state was removed.
    fn remove_flow(&mut self, now: SimTime, flow: ispn_core::FlowId) -> bool {
        let _ = (now, flow);
        false
    }

    /// Structural size, in bytes, of the per-flow scheduler state this
    /// discipline holds: slot tables, dense lane records, and queue
    /// storage (pooled segments at their full capacity, or heap entries
    /// by length).  A deterministic length-based estimate — element
    /// counts × element sizes, never allocator measurements — matching
    /// the accounting rules of `Network::flow_table_bytes`, which sums
    /// this over every port.  Stateless disciplines report 0.
    fn state_bytes(&self) -> u64 {
        0
    }

    /// Structural size, in bytes, of the per-flow *reservation* entries
    /// this discipline holds (clock rates installed through
    /// [`install_guaranteed`](QueueDiscipline::install_guaranteed) and
    /// the GPS bookkeeping behind them).  Same estimation rules as
    /// [`state_bytes`](QueueDiscipline::state_bytes); disciplines with no
    /// reservation state report 0.
    fn reservation_bytes(&self) -> u64 {
        0
    }

    /// Cumulative count of queue-pool growth events — times the backing
    /// segment pool allocated a brand-new segment.  Flat between two
    /// instants means the discipline performed zero queue-storage
    /// allocations in between; disciplines without pooled storage
    /// report 0.
    fn pool_grow_events(&self) -> u64 {
        0
    }

    /// High-water segment count of the backing queue pool (0 for
    /// disciplines without pooled storage).
    fn pool_segments_high_water(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispn_core::FlowId;

    #[test]
    fn dequeued_reports_queueing_delay() {
        let d = Dequeued {
            packet: Packet::data(FlowId(0), 0, 1000, SimTime::ZERO),
            arrival: SimTime::from_millis(10),
            class: ServiceClass::Datagram,
        };
        assert_eq!(
            d.queueing_delay(SimTime::from_millis(25)),
            SimTime::from_millis(15)
        );
        // Clock weirdness saturates rather than panicking.
        assert_eq!(d.queueing_delay(SimTime::from_millis(5)), SimTime::ZERO);
    }

    #[test]
    fn context_constructors() {
        let c = SchedContext::datagram(SimTime::from_millis(1));
        assert_eq!(c.class, ServiceClass::Datagram);
        let c = SchedContext::new(ServiceClass::Guaranteed, SimTime::ZERO);
        assert_eq!(c.class, ServiceClass::Guaranteed);
    }
}
