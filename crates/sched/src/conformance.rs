//! A conformance suite every queue discipline must satisfy.
//!
//! These checks encode the contract stated on [`QueueDiscipline`]: no packet
//! is lost or duplicated, the discipline is work-conserving, and packets of
//! a single flow leave in the order they arrived (all the paper's
//! disciplines are per-flow FIFO — reordering only ever happens *between*
//! flows).  The suite is public so that downstream crates adding their own
//! disciplines can run the same checks.

use std::collections::BTreeMap;

use ispn_core::{FlowId, Packet, ServiceClass};
use ispn_sim::{Pcg64, SimTime};

use crate::disc::{QueueDiscipline, SchedContext};

/// A deterministic synthetic workload: `n_packets` packets spread over
/// `n_flows` flows with pseudo-random arrival gaps.  Every flow keeps one
/// service class for its lifetime (as a real reservation would), chosen
/// pseudo-randomly per flow.
pub fn synthetic_workload(
    seed: u64,
    n_flows: u32,
    n_packets: usize,
) -> Vec<(SimTime, Packet, SchedContext)> {
    let mut rng = Pcg64::new(seed);
    let classes: Vec<ServiceClass> = (0..n_flows)
        .map(|_| match rng.next_below(4) {
            0 => ServiceClass::Guaranteed,
            1 => ServiceClass::Predicted { priority: 0 },
            2 => ServiceClass::Predicted { priority: 1 },
            _ => ServiceClass::Datagram,
        })
        .collect();
    let mut out = Vec::with_capacity(n_packets);
    let mut now = SimTime::ZERO;
    let mut seqs: BTreeMap<u32, u64> = BTreeMap::new();
    for _ in 0..n_packets {
        now += SimTime::from_micros(rng.next_below(2000));
        let flow = rng.next_below(n_flows as u64) as u32;
        let seq = seqs.entry(flow).or_insert(0);
        let pkt = Packet::data(FlowId(flow), *seq, 1000, now);
        *seq += 1;
        out.push((now, pkt, SchedContext::new(classes[flow as usize], now)));
    }
    out
}

/// Feed the workload through the discipline, interleaving enqueues with
/// dequeues (one dequeue per millisecond of simulated time, mimicking a
/// 1 Mbit/s link), then drain it.  Returns the dequeued packets in order.
pub fn exercise<D: QueueDiscipline>(
    disc: &mut D,
    workload: &[(SimTime, Packet, SchedContext)],
) -> Vec<Packet> {
    let mut out = Vec::with_capacity(workload.len());
    let mut next_service = SimTime::ZERO;
    for (t, pkt, ctx) in workload {
        // Serve everything that would have been transmitted before this
        // arrival (one packet per millisecond).
        while next_service < *t {
            if let Some(d) = disc.dequeue(next_service) {
                out.push(d.packet);
            }
            next_service += SimTime::MILLISECOND;
        }
        disc.enqueue(*t, *pkt, *ctx);
    }
    let mut now = next_service;
    while !disc.is_empty() {
        let before = disc.len();
        if let Some(d) = disc.dequeue(now) {
            out.push(d.packet);
        }
        assert!(
            disc.len() < before,
            "{}: dequeue made no progress on a non-empty queue (work conservation violated)",
            disc.name()
        );
        now += SimTime::MILLISECOND;
    }
    out
}

/// Assert that `served` is a permutation of the workload's packets.
pub fn assert_no_loss_no_duplication(
    workload: &[(SimTime, Packet, SchedContext)],
    served: &[Packet],
) {
    assert_eq!(workload.len(), served.len(), "packet count mismatch");
    let mut expected: Vec<(u32, u64)> =
        workload.iter().map(|(_, p, _)| (p.flow.0, p.seq)).collect();
    let mut got: Vec<(u32, u64)> = served.iter().map(|p| (p.flow.0, p.seq)).collect();
    expected.sort_unstable();
    got.sort_unstable();
    assert_eq!(
        expected, got,
        "served packets are not a permutation of offered packets"
    );
}

/// Assert per-flow FIFO order: within a flow, sequence numbers leave in
/// increasing order.
pub fn assert_per_flow_fifo(served: &[Packet]) {
    let mut last: BTreeMap<u32, u64> = BTreeMap::new();
    for p in served {
        if let Some(prev) = last.get(&p.flow.0) {
            assert!(
                p.seq > *prev,
                "flow {} delivered seq {} after seq {}",
                p.flow.0,
                p.seq,
                prev
            );
        }
        last.insert(p.flow.0, p.seq);
    }
}

/// Run the full conformance suite against a freshly constructed discipline.
pub fn check_discipline<D: QueueDiscipline>(mut disc: D) {
    for seed in [1u64, 7, 42] {
        let workload = synthetic_workload(seed, 6, 400);
        let served = exercise(&mut disc, &workload);
        assert_no_loss_no_duplication(&workload, &served);
        assert_per_flow_fifo(&served);
        assert!(disc.is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo::Fifo;
    use crate::fifo_plus::{Averaging, FifoPlus};
    use crate::priority::StrictPriority;
    use crate::unified::Unified;
    use crate::virtual_clock::VirtualClock;
    use crate::wfq::Wfq;

    const MBIT: f64 = 1_000_000.0;

    #[test]
    fn fifo_conforms() {
        check_discipline(Fifo::new());
    }

    #[test]
    fn wfq_conforms() {
        check_discipline(Wfq::equal_share(MBIT, 6));
    }

    #[test]
    fn virtual_clock_conforms() {
        check_discipline(VirtualClock::new(MBIT / 6.0));
    }

    #[test]
    fn fifo_plus_conforms() {
        check_discipline(FifoPlus::new(Averaging::RunningMean));
        check_discipline(FifoPlus::new(Averaging::Ewma(1.0 / 16.0)));
    }

    #[test]
    fn priority_conforms() {
        let q: StrictPriority<Fifo> = StrictPriority::new(2);
        check_discipline(q);
    }

    #[test]
    fn unified_conforms() {
        let mut u = Unified::new(MBIT, 2, Averaging::RunningMean);
        u.add_guaranteed_flow(FlowId(0), 100_000.0);
        u.add_guaranteed_flow(FlowId(1), 100_000.0);
        check_discipline(u);
    }

    #[test]
    fn workload_is_deterministic() {
        let a = synthetic_workload(5, 4, 100);
        let b = synthetic_workload(5, 4, 100);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1, y.1);
        }
        // Different seeds give different workloads.
        let c = synthetic_workload(6, 4, 100);
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x.1 != y.1));
    }
}

#[cfg(test)]
mod jitter_property_tests {
    //! Statistical checks of the paper's central qualitative claims at the
    //! single-queue level (the full network-level versions are in the
    //! integration tests and experiments).

    use super::*;
    use crate::fifo::Fifo;
    use crate::wfq::Wfq;
    use ispn_stats::SampleSet;

    const MBIT: f64 = 1_000_000.0;

    /// Build a bursty workload: `n_flows` flows alternate between idle and
    /// bursts of several back-to-back packets (a caricature of the paper's
    /// on/off sources), then measure per-packet waiting times under a
    /// discipline.
    fn bursty_delays<D: QueueDiscipline>(disc: &mut D, seed: u64) -> SampleSet {
        let mut rng = Pcg64::new(seed);
        let mut arrivals: Vec<(SimTime, Packet, SchedContext)> = Vec::new();
        let mut seq = [0u64; 8];
        for flow in 0..8u32 {
            let mut t = SimTime::from_micros(rng.next_below(10_000));
            while t < SimTime::from_secs(2) {
                let burst = 1 + rng.next_below(8);
                for _ in 0..burst {
                    let p = Packet::data(FlowId(flow), seq[flow as usize], 1000, t);
                    seq[flow as usize] += 1;
                    arrivals.push((t, p, SchedContext::datagram(t)));
                }
                t += SimTime::from_micros(8_000 + rng.next_below(30_000));
            }
        }
        arrivals.sort_by_key(|(t, p, _)| (*t, p.flow.0, p.seq));

        // Run an output link at 1 packet per ms.
        let mut delays = SampleSet::new();
        let mut next_free = SimTime::ZERO;
        let mut idx = 0;
        while idx < arrivals.len() || !disc.is_empty() {
            // Enqueue everything that arrives before the link is next free.
            while idx < arrivals.len() && arrivals[idx].0 <= next_free {
                let (t, p, c) = arrivals[idx];
                disc.enqueue(t, p, c);
                idx += 1;
            }
            if disc.is_empty() {
                if idx < arrivals.len() {
                    next_free = arrivals[idx].0;
                }
                continue;
            }
            if let Some(d) = disc.dequeue(next_free) {
                delays.record(d.queueing_delay(next_free).as_millis_f64());
            }
            next_free += SimTime::MILLISECOND;
        }
        delays
    }

    #[test]
    fn fifo_tail_delay_is_lower_than_wfq_for_shared_bursty_traffic() {
        // The Table-1 claim in miniature: same workload, same link; the
        // 99.9th-percentile waiting time under FIFO is no worse than under
        // equal-share WFQ, while the means are comparable.
        let mut fifo = Fifo::new();
        let mut wfq = Wfq::equal_share(MBIT, 8);
        let mut fifo_delays = bursty_delays(&mut fifo, 99);
        let mut wfq_delays = bursty_delays(&mut wfq, 99);
        assert_eq!(fifo_delays.len(), wfq_delays.len());
        let f999 = fifo_delays.p999();
        let w999 = wfq_delays.p999();
        assert!(
            f999 <= w999 * 1.05,
            "FIFO 99.9th percentile {f999:.2} should not exceed WFQ's {w999:.2}"
        );
        let fm = fifo_delays.mean();
        let wm = wfq_delays.mean();
        assert!(
            (fm - wm).abs() / wm < 0.25,
            "means should be comparable: FIFO {fm:.2} vs WFQ {wm:.2}"
        );
    }
}
