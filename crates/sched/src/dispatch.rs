//! Enum dispatch over the built-in disciplines.
//!
//! The per-hop hot path used to reach the scheduler through
//! `Probed<Box<dyn QueueDiscipline>>` — two pointer indirections and a
//! vtable call per enqueue/dequeue.  [`Discipline`] flattens that into a
//! concrete enum the compiler can match on (and inline through), while the
//! [`Discipline::Custom`] variant keeps the trait-object escape hatch for
//! downstream disciplines the enum does not know about.
//!
//! The enum is behaviorally transparent: driving any workload through the
//! enum variant produces exactly the packet sequence the wrapped concrete
//! discipline produces (pinned by the equivalence property tests below), so
//! converting a call site from `Box<dyn QueueDiscipline>` to `Discipline`
//! is byte-identical by construction.

use ispn_core::{FlowId, Packet};
use ispn_sim::SimTime;

use crate::disc::{Dequeued, GuaranteedInstall, QueueDiscipline, SchedContext};
use crate::fifo::Fifo;
use crate::fifo_plus::FifoPlus;
use crate::priority::StrictPriority;
use crate::unified::Unified;
use crate::virtual_clock::VirtualClock;
use crate::wfq::Wfq;

/// A concrete queueing discipline, dispatched by `match` instead of vtable.
///
/// Every discipline the paper discusses has its own variant; anything else
/// rides in [`Discipline::Custom`].  Construct variants with `From` (or
/// [`Discipline::custom`] for trait objects):
///
/// ```
/// use ispn_sched::{Discipline, Fifo, QueueDiscipline};
/// let d: Discipline = Fifo::new().into();
/// assert_eq!(d.name(), "FIFO");
/// ```
pub enum Discipline {
    /// Plain FIFO (Section 5 sharing).
    Fifo(Fifo),
    /// FIFO+ multi-hop sharing (Section 6).
    FifoPlus(FifoPlus),
    /// Weighted Fair Queueing / PGPS (Section 4 isolation).
    Wfq(Wfq),
    /// The VirtualClock baseline (ablations).
    VirtualClock(VirtualClock),
    /// Strict priority over FIFO bands (the ablation discipline).
    Priority(StrictPriority<Fifo>),
    /// The full Section-7 unified scheduler.
    Unified(Unified),
    /// Escape hatch for disciplines the enum does not know about.
    Custom(Box<dyn QueueDiscipline>),
}

impl Discipline {
    /// Wrap an arbitrary discipline in the [`Discipline::Custom`] variant.
    pub fn custom(disc: impl QueueDiscipline + 'static) -> Self {
        Discipline::Custom(Box::new(disc))
    }
}

impl From<Fifo> for Discipline {
    fn from(d: Fifo) -> Self {
        Discipline::Fifo(d)
    }
}
impl From<FifoPlus> for Discipline {
    fn from(d: FifoPlus) -> Self {
        Discipline::FifoPlus(d)
    }
}
impl From<Wfq> for Discipline {
    fn from(d: Wfq) -> Self {
        Discipline::Wfq(d)
    }
}
impl From<VirtualClock> for Discipline {
    fn from(d: VirtualClock) -> Self {
        Discipline::VirtualClock(d)
    }
}
impl From<StrictPriority<Fifo>> for Discipline {
    fn from(d: StrictPriority<Fifo>) -> Self {
        Discipline::Priority(d)
    }
}
impl From<Unified> for Discipline {
    fn from(d: Unified) -> Self {
        Discipline::Unified(d)
    }
}
impl From<Box<dyn QueueDiscipline>> for Discipline {
    fn from(d: Box<dyn QueueDiscipline>) -> Self {
        Discipline::Custom(d)
    }
}

macro_rules! dispatch {
    ($self:expr, $d:ident => $body:expr) => {
        match $self {
            Discipline::Fifo($d) => $body,
            Discipline::FifoPlus($d) => $body,
            Discipline::Wfq($d) => $body,
            Discipline::VirtualClock($d) => $body,
            Discipline::Priority($d) => $body,
            Discipline::Unified($d) => $body,
            Discipline::Custom($d) => $body,
        }
    };
}

impl QueueDiscipline for Discipline {
    #[inline]
    fn enqueue(&mut self, now: SimTime, packet: Packet, ctx: SchedContext) {
        dispatch!(self, d => d.enqueue(now, packet, ctx))
    }

    #[inline]
    fn dequeue(&mut self, now: SimTime) -> Option<Dequeued> {
        dispatch!(self, d => d.dequeue(now))
    }

    #[inline]
    fn len(&self) -> usize {
        dispatch!(self, d => d.len())
    }

    #[inline]
    fn is_empty(&self) -> bool {
        dispatch!(self, d => d.is_empty())
    }

    fn name(&self) -> &'static str {
        dispatch!(self, d => d.name())
    }

    fn install_guaranteed(&mut self, flow: FlowId, rate_bps: f64) -> GuaranteedInstall {
        dispatch!(self, d => d.install_guaranteed(flow, rate_bps))
    }

    fn remove_flow(&mut self, now: SimTime, flow: FlowId) -> bool {
        dispatch!(self, d => d.remove_flow(now, flow))
    }

    fn state_bytes(&self) -> u64 {
        dispatch!(self, d => d.state_bytes())
    }

    fn reservation_bytes(&self) -> u64 {
        dispatch!(self, d => d.reservation_bytes())
    }

    fn pool_grow_events(&self) -> u64 {
        dispatch!(self, d => d.pool_grow_events())
    }

    fn pool_segments_high_water(&self) -> u64 {
        dispatch!(self, d => d.pool_segments_high_water())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo_plus::Averaging;

    const MBIT: f64 = 1_000_000.0;

    #[test]
    fn names_pass_through_every_variant() {
        let variants: Vec<Discipline> = vec![
            Fifo::new().into(),
            FifoPlus::new(Averaging::RunningMean).into(),
            Wfq::equal_share(MBIT, 4).into(),
            VirtualClock::new(100_000.0).into(),
            StrictPriority::<Fifo>::new(2).into(),
            Unified::new(MBIT, 2, Averaging::RunningMean).into(),
            Discipline::custom(Fifo::new()),
        ];
        let names: Vec<&str> = variants.iter().map(|d| d.name()).collect();
        assert_eq!(
            names,
            vec![
                "FIFO",
                "FIFO+",
                "WFQ",
                "VirtualClock",
                "Priority",
                "Unified",
                "FIFO"
            ]
        );
        for d in &variants {
            assert!(d.is_empty());
            assert_eq!(d.len(), 0);
        }
    }

    #[test]
    fn guaranteed_install_delegates() {
        let mut d: Discipline = Unified::new(MBIT, 1, Averaging::RunningMean).into();
        assert_eq!(
            d.install_guaranteed(FlowId(1), 200_000.0),
            GuaranteedInstall::Installed
        );
        assert!(d.remove_flow(SimTime::ZERO, FlowId(1)));
        let mut f: Discipline = Fifo::new().into();
        assert_eq!(
            f.install_guaranteed(FlowId(1), 200_000.0),
            GuaranteedInstall::Unsupported
        );
    }

    #[test]
    fn boxed_discipline_converts_to_custom() {
        let boxed: Box<dyn QueueDiscipline> = Box::new(Wfq::equal_share(MBIT, 2));
        let d: Discipline = boxed.into();
        assert_eq!(d.name(), "WFQ");
        assert!(matches!(d, Discipline::Custom(_)));
    }

    /// The satellite equivalence property: every discipline driven through
    /// its `Discipline` enum variant serves exactly the packet sequence the
    /// bare concrete discipline (here: the old boxed trait-object path, via
    /// `Custom`) serves, for arbitrary synthetic workloads.
    mod enum_vs_boxed_equivalence {
        use super::*;
        use crate::conformance;
        use proptest::prelude::*;

        fn make_pair(which: u8) -> (Discipline, Discipline) {
            // Construct the same discipline twice: once as its dedicated
            // enum variant, once behind the old boxed indirection.
            let variant: Discipline = match which % 6 {
                0 => Fifo::new().into(),
                1 => FifoPlus::new(Averaging::RunningMean).into(),
                2 => Wfq::equal_share(MBIT, 6).into(),
                3 => VirtualClock::new(MBIT / 6.0).into(),
                4 => StrictPriority::<Fifo>::new(2).into(),
                _ => {
                    let mut u = Unified::new(MBIT, 2, Averaging::RunningMean);
                    u.add_guaranteed_flow(FlowId(0), 120_000.0);
                    u.into()
                }
            };
            let boxed: Discipline = match which % 6 {
                0 => Discipline::custom(Fifo::new()),
                1 => Discipline::custom(FifoPlus::new(Averaging::RunningMean)),
                2 => Discipline::custom(Wfq::equal_share(MBIT, 6)),
                3 => Discipline::custom(VirtualClock::new(MBIT / 6.0)),
                4 => Discipline::custom(StrictPriority::<Fifo>::new(2)),
                _ => {
                    let mut u = Unified::new(MBIT, 2, Averaging::RunningMean);
                    u.add_guaranteed_flow(FlowId(0), 120_000.0);
                    Discipline::custom(u)
                }
            };
            (variant, boxed)
        }

        proptest! {
            #[test]
            fn identical_event_sequences(which in 0u8..6, seed in any::<u64>()) {
                let (mut variant, mut boxed) = make_pair(which);
                let workload = conformance::synthetic_workload(seed, 6, 300);
                let via_variant = conformance::exercise(&mut variant, &workload);
                let via_boxed = conformance::exercise(&mut boxed, &workload);
                prop_assert_eq!(via_variant, via_boxed);
            }
        }
    }
}
