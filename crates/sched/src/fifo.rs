//! First-in first-out — the sharing discipline of Section 5.
//!
//! "Consider what happens when we use the FIFO queueing discipline instead
//! of WFQ.  Now when a burst from one source arrives, this burst passes
//! through the queue in a clump while subsequent packets from the other
//! sources are temporarily delayed; this latter delay, however, is much
//! smaller than the delay that the bursting source would have received
//! under WFQ. … When the delays are shared as in FIFO, in what might be
//! called a multiplexing of bursts, the post facto jitter bounds are smaller
//! than when the sources are isolated from each other as in WFQ."

use ispn_core::arena::{SegQueue, SegmentPool};
use ispn_core::Packet;
use ispn_sim::SimTime;

use crate::disc::{Dequeued, QueueDiscipline, SchedContext};

/// A plain FIFO queue, backed by pooled segment storage so steady-state
/// enqueue/dequeue traffic performs no allocations after warm-up.
#[derive(Debug, Default)]
pub struct Fifo {
    pool: SegmentPool<(Packet, SchedContext)>,
    queue: SegQueue<(Packet, SchedContext)>,
}

impl Fifo {
    /// Create an empty FIFO queue.
    pub fn new() -> Self {
        Fifo {
            pool: SegmentPool::new(),
            queue: SegQueue::new(),
        }
    }
}

impl QueueDiscipline for Fifo {
    fn enqueue(&mut self, _now: SimTime, packet: Packet, ctx: SchedContext) {
        self.pool.push_back(&mut self.queue, (packet, ctx));
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<Dequeued> {
        self.pool
            .pop_front(&mut self.queue)
            .map(|(packet, ctx)| Dequeued {
                packet,
                arrival: ctx.arrival,
                class: ctx.class,
            })
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn name(&self) -> &'static str {
        "FIFO"
    }

    fn state_bytes(&self) -> u64 {
        self.pool.bytes()
    }

    fn pool_grow_events(&self) -> u64 {
        self.pool.grow_events()
    }

    fn pool_segments_high_water(&self) -> u64 {
        self.pool.segments_high_water()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispn_core::FlowId;

    fn pkt(flow: u32, seq: u64) -> Packet {
        Packet::data(FlowId(flow), seq, 1000, SimTime::ZERO)
    }

    #[test]
    fn serves_in_arrival_order_across_flows() {
        let mut q = Fifo::new();
        let t = SimTime::from_millis(1);
        q.enqueue(t, pkt(1, 0), SchedContext::datagram(t));
        q.enqueue(t, pkt(2, 0), SchedContext::datagram(t));
        q.enqueue(t, pkt(1, 1), SchedContext::datagram(t));
        assert_eq!(q.len(), 3);
        assert_eq!(q.dequeue(t).unwrap().packet.flow, FlowId(1));
        assert_eq!(q.dequeue(t).unwrap().packet.flow, FlowId(2));
        let last = q.dequeue(t).unwrap();
        assert_eq!(last.packet.flow, FlowId(1));
        assert_eq!(last.packet.seq, 1);
        assert!(q.is_empty());
        assert_eq!(q.dequeue(t), None);
    }

    #[test]
    fn reports_arrival_for_delay_measurement() {
        let mut q = Fifo::new();
        q.enqueue(
            SimTime::from_millis(3),
            pkt(0, 0),
            SchedContext::datagram(SimTime::from_millis(3)),
        );
        let d = q.dequeue(SimTime::from_millis(9)).unwrap();
        assert_eq!(
            d.queueing_delay(SimTime::from_millis(9)),
            SimTime::from_millis(6)
        );
    }

    #[test]
    fn name_is_fifo() {
        assert_eq!(Fifo::new().name(), "FIFO");
    }
}
