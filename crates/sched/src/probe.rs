//! A transparent instrumentation wrapper around any queue discipline.
//!
//! [`Probed`] delegates every [`QueueDiscipline`] method to the wrapped
//! discipline unchanged — same packets, same order, same `name()`, so
//! reports and goldens cannot tell it is there — while counting enqueues
//! and dequeues per service class and tracking the peak queue depth.  The
//! switch in `ispn-net` wraps every output port's discipline in one of
//! these, which is how per-link telemetry reaches `ScenarioReport` without
//! any discipline knowing about counters.

use ispn_core::ServiceClass;
use ispn_sim::SimTime;
use ispn_telemetry::{
    Counter, HighWater, PerClass, CLASS_DATAGRAM, CLASS_GUARANTEED, CLASS_PREDICTED,
};

use crate::disc::{Dequeued, GuaranteedInstall, QueueDiscipline, SchedContext};

/// The telemetry bucket a service class is counted under (predicted
/// priorities are pooled — the per-priority split already lives in the
/// measurement `Monitor`).
pub fn class_bucket(class: ServiceClass) -> usize {
    match class {
        ServiceClass::Guaranteed => CLASS_GUARANTEED,
        ServiceClass::Predicted { .. } => CLASS_PREDICTED,
        ServiceClass::Datagram => CLASS_DATAGRAM,
    }
}

/// The counters one [`Probed`] wrapper has accumulated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Packets accepted into the queue, per class bucket.
    pub enqueued: PerClass<Counter>,
    /// Packets handed back for transmission, per class bucket.
    pub dequeued: PerClass<Counter>,
    /// The deepest the queue ever was (in packets).
    pub depth_high_water: HighWater,
}

/// A [`QueueDiscipline`] that counts what passes through an inner one.
#[derive(Debug)]
pub struct Probed<D> {
    inner: D,
    stats: ProbeStats,
}

impl<D: QueueDiscipline> Probed<D> {
    /// Wrap `inner`; the probe starts with all counters at zero.
    pub fn new(inner: D) -> Self {
        Probed {
            inner,
            stats: ProbeStats::default(),
        }
    }

    /// The accumulated counters.
    pub fn stats(&self) -> &ProbeStats {
        &self.stats
    }

    /// The wrapped discipline.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Mutable access to the wrapped discipline.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }
}

impl<D: QueueDiscipline> QueueDiscipline for Probed<D> {
    // The probe adds no allocation or indirection on top of the inner
    // discipline — with `Discipline` enum dispatch inside, the whole stack
    // inlines down to a counter bump plus a direct call.
    #[inline]
    fn enqueue(&mut self, now: SimTime, packet: ispn_core::Packet, ctx: SchedContext) {
        self.stats
            .enqueued
            .bucket_mut(class_bucket(ctx.class))
            .incr();
        self.inner.enqueue(now, packet, ctx);
        self.stats.depth_high_water.observe(self.inner.len() as u64);
    }

    #[inline]
    fn dequeue(&mut self, now: SimTime) -> Option<Dequeued> {
        let d = self.inner.dequeue(now);
        if let Some(d) = &d {
            self.stats.dequeued.bucket_mut(class_bucket(d.class)).incr();
        }
        d
    }

    #[inline]
    fn len(&self) -> usize {
        self.inner.len()
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn install_guaranteed(&mut self, flow: ispn_core::FlowId, rate_bps: f64) -> GuaranteedInstall {
        self.inner.install_guaranteed(flow, rate_bps)
    }

    fn remove_flow(&mut self, now: SimTime, flow: ispn_core::FlowId) -> bool {
        self.inner.remove_flow(now, flow)
    }

    fn state_bytes(&self) -> u64 {
        self.inner.state_bytes()
    }

    fn reservation_bytes(&self) -> u64 {
        self.inner.reservation_bytes()
    }

    fn pool_grow_events(&self) -> u64 {
        self.inner.pool_grow_events()
    }

    fn pool_segments_high_water(&self) -> u64 {
        self.inner.pool_segments_high_water()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo::Fifo;
    use ispn_core::{FlowId, Packet};

    fn pkt(seq: u64) -> Packet {
        Packet::data(FlowId(0), seq, 1000, SimTime::ZERO)
    }

    #[test]
    fn probe_is_transparent() {
        let mut probed = Probed::new(Fifo::new());
        assert_eq!(probed.name(), Fifo::new().name());
        probed.enqueue(SimTime::ZERO, pkt(0), SchedContext::datagram(SimTime::ZERO));
        probed.enqueue(SimTime::ZERO, pkt(1), SchedContext::datagram(SimTime::ZERO));
        assert_eq!(probed.len(), 2);
        let d = probed
            .dequeue(SimTime::MILLISECOND)
            .expect("fifo has packets");
        assert_eq!(d.packet.seq, 0);
        assert_eq!(probed.len(), 1);
        assert!(!probed.is_empty());
    }

    #[test]
    fn probe_counts_per_class_and_tracks_depth() {
        let mut probed = Probed::new(Fifo::new());
        let classes = [
            ServiceClass::Guaranteed,
            ServiceClass::Predicted { priority: 0 },
            ServiceClass::Predicted { priority: 2 },
            ServiceClass::Datagram,
        ];
        for (i, class) in classes.iter().enumerate() {
            probed.enqueue(
                SimTime::ZERO,
                pkt(i as u64),
                SchedContext::new(*class, SimTime::ZERO),
            );
        }
        let s = probed.stats();
        assert_eq!(s.enqueued.bucket(CLASS_GUARANTEED).get(), 1);
        assert_eq!(s.enqueued.bucket(CLASS_PREDICTED).get(), 2);
        assert_eq!(s.enqueued.bucket(CLASS_DATAGRAM).get(), 1);
        assert_eq!(s.depth_high_water.get(), 4);
        while probed.dequeue(SimTime::SECOND).is_some() {}
        let s = probed.stats();
        assert_eq!(s.dequeued.total(), 4);
        // Draining does not lower the peak.
        assert_eq!(s.depth_high_water.get(), 4);
    }

    #[test]
    fn probe_delegates_guaranteed_install_and_removal() {
        let mut probed = Probed::new(Fifo::new());
        assert_eq!(
            probed.install_guaranteed(FlowId(3), 1000.0),
            GuaranteedInstall::Unsupported
        );
        assert!(!probed.remove_flow(SimTime::ZERO, FlowId(3)));
    }
}
