//! Strict priority over a set of inner disciplines.
//!
//! Section 5: "Another sharing method is priority … In priority, one class
//! acquires jitter of higher priority classes, which consequently get much
//! lower jitter."  Section 7 uses exactly this structure inside pseudo-flow
//! 0 of the unified scheduler: K predicted-service priority levels (each
//! running FIFO+) stacked above the datagram class.
//!
//! This type is generic over the inner discipline so it can also express
//! simpler schemes (e.g. priority-over-FIFO) for the ablation benchmarks.

use ispn_core::{Packet, ServiceClass};
use ispn_sim::SimTime;

use crate::disc::{Dequeued, QueueDiscipline, SchedContext};

/// Strict priority among `levels` inner disciplines plus one lowest-priority
/// datagram queue.
///
/// A packet's level is chosen from its [`SchedContext::class`]:
/// `Predicted { priority: p }` goes to level `p` (clamped to the configured
/// number of levels), everything else goes to the datagram queue.
pub struct StrictPriority<D> {
    levels: Vec<D>,
    datagram: D,
    len: usize,
}

impl<D: QueueDiscipline + Default> StrictPriority<D> {
    /// Create a scheduler with `num_levels` predicted-priority levels (all
    /// using `D::default()`) above a datagram queue.
    pub fn new(num_levels: usize) -> Self {
        StrictPriority {
            levels: (0..num_levels).map(|_| D::default()).collect(),
            datagram: D::default(),
            len: 0,
        }
    }
}

impl<D: QueueDiscipline> StrictPriority<D> {
    /// Create a scheduler from explicitly constructed inner disciplines.
    pub fn from_parts(levels: Vec<D>, datagram: D) -> Self {
        StrictPriority {
            levels,
            datagram,
            len: 0,
        }
    }

    /// Number of predicted priority levels (not counting the datagram
    /// queue).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Borrow the inner discipline of a priority level.
    pub fn level(&self, p: usize) -> Option<&D> {
        self.levels.get(p)
    }

    /// Mutably borrow the inner discipline of a priority level.
    pub fn level_mut(&mut self, p: usize) -> Option<&mut D> {
        self.levels.get_mut(p)
    }

    /// Borrow the datagram queue.
    pub fn datagram(&self) -> &D {
        &self.datagram
    }

    fn level_for(&self, class: ServiceClass) -> Option<usize> {
        match class {
            ServiceClass::Predicted { priority } if !self.levels.is_empty() => {
                Some((priority as usize).min(self.levels.len() - 1))
            }
            _ => None,
        }
    }
}

impl<D: QueueDiscipline> QueueDiscipline for StrictPriority<D> {
    fn enqueue(&mut self, now: SimTime, packet: Packet, ctx: SchedContext) {
        self.len += 1;
        match self.level_for(ctx.class) {
            Some(p) => self.levels[p].enqueue(now, packet, ctx),
            None => self.datagram.enqueue(now, packet, ctx),
        }
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Dequeued> {
        for level in &mut self.levels {
            if !level.is_empty() {
                self.len -= 1;
                return level.dequeue(now);
            }
        }
        if !self.datagram.is_empty() {
            self.len -= 1;
            return self.datagram.dequeue(now);
        }
        None
    }

    fn len(&self) -> usize {
        self.len
    }

    fn name(&self) -> &'static str {
        "Priority"
    }

    fn state_bytes(&self) -> u64 {
        self.levels.iter().map(|l| l.state_bytes()).sum::<u64>() + self.datagram.state_bytes()
    }

    fn reservation_bytes(&self) -> u64 {
        self.levels
            .iter()
            .map(|l| l.reservation_bytes())
            .sum::<u64>()
            + self.datagram.reservation_bytes()
    }

    fn pool_grow_events(&self) -> u64 {
        self.levels
            .iter()
            .map(|l| l.pool_grow_events())
            .sum::<u64>()
            + self.datagram.pool_grow_events()
    }

    fn pool_segments_high_water(&self) -> u64 {
        self.levels
            .iter()
            .map(|l| l.pool_segments_high_water())
            .sum::<u64>()
            + self.datagram.pool_segments_high_water()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo::Fifo;
    use crate::fifo_plus::FifoPlus;
    use ispn_core::FlowId;

    fn pkt(flow: u32, seq: u64) -> Packet {
        Packet::data(FlowId(flow), seq, 1000, SimTime::ZERO)
    }

    fn predicted(p: u8, t: SimTime) -> SchedContext {
        SchedContext::new(ServiceClass::Predicted { priority: p }, t)
    }

    #[test]
    fn higher_priority_always_served_first() {
        let mut q: StrictPriority<Fifo> = StrictPriority::new(2);
        let t = SimTime::ZERO;
        q.enqueue(t, pkt(1, 0), SchedContext::datagram(t));
        q.enqueue(t, pkt(2, 0), predicted(1, t));
        q.enqueue(t, pkt(3, 0), predicted(0, t));
        assert_eq!(q.len(), 3);
        assert_eq!(q.dequeue(t).unwrap().packet.flow, FlowId(3));
        assert_eq!(q.dequeue(t).unwrap().packet.flow, FlowId(2));
        assert_eq!(q.dequeue(t).unwrap().packet.flow, FlowId(1));
        assert!(q.dequeue(t).is_none());
    }

    #[test]
    fn datagram_starved_while_priority_backlogged() {
        let mut q: StrictPriority<Fifo> = StrictPriority::new(1);
        let t = SimTime::ZERO;
        q.enqueue(t, pkt(9, 0), SchedContext::datagram(t));
        for s in 0..5 {
            q.enqueue(t, pkt(1, s), predicted(0, t));
        }
        for _ in 0..5 {
            assert_eq!(q.dequeue(t).unwrap().packet.flow, FlowId(1));
        }
        assert_eq!(q.dequeue(t).unwrap().packet.flow, FlowId(9));
    }

    #[test]
    fn guaranteed_class_falls_back_to_datagram_queue() {
        // The pure priority scheduler has no WFQ layer; a guaranteed-class
        // packet (which should never reach it in the unified design) is
        // treated as datagram rather than lost.
        let mut q: StrictPriority<Fifo> = StrictPriority::new(1);
        let t = SimTime::ZERO;
        q.enqueue(t, pkt(1, 0), SchedContext::new(ServiceClass::Guaranteed, t));
        assert_eq!(q.dequeue(t).unwrap().packet.flow, FlowId(1));
    }

    #[test]
    fn out_of_range_priority_clamps_to_lowest_level() {
        let mut q: StrictPriority<Fifo> = StrictPriority::new(2);
        let t = SimTime::ZERO;
        q.enqueue(t, pkt(1, 0), predicted(7, t));
        q.enqueue(t, pkt(2, 0), predicted(1, t));
        // Both are in level 1; FIFO order applies.
        assert_eq!(q.dequeue(t).unwrap().packet.flow, FlowId(1));
        assert_eq!(q.dequeue(t).unwrap().packet.flow, FlowId(2));
    }

    #[test]
    fn works_with_fifo_plus_inner_disciplines() {
        let mut q: StrictPriority<FifoPlus> = StrictPriority::new(2);
        let t = SimTime::from_millis(1);
        q.enqueue(t, pkt(1, 0), predicted(0, t));
        q.enqueue(t, pkt(2, 0), predicted(1, t));
        let first = q.dequeue(SimTime::from_millis(2)).unwrap();
        assert_eq!(first.packet.flow, FlowId(1));
        assert_eq!(q.level(0).unwrap().measured_count(), 1);
        assert_eq!(q.level(1).unwrap().measured_count(), 0);
        assert!(q.level(5).is_none());
        assert_eq!(q.num_levels(), 2);
        assert!(q.datagram().is_empty());
        assert_eq!(q.name(), "Priority");
    }

    #[test]
    fn zero_levels_sends_everything_to_datagram() {
        let mut q: StrictPriority<Fifo> = StrictPriority::new(0);
        let t = SimTime::ZERO;
        q.enqueue(t, pkt(1, 0), predicted(0, t));
        assert_eq!(q.dequeue(t).unwrap().packet.flow, FlowId(1));
    }
}
