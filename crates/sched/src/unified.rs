//! The unified scheduling algorithm (Section 7).
//!
//! "The basic idea is that we must isolate the traffic of guaranteed service
//! class from that of predicted service class, as well as isolate guaranteed
//! flows from each other.  Therefore we use the time-stamp based WFQ scheme
//! as a framework into which we fit the other scheduling algorithms.  Each
//! guaranteed service client α has a separate WFQ flow with some clock rate
//! rα.  All of the predicted service and datagram service traffic is
//! assigned to a pseudo WFQ flow, call it flow 0, with, at each link,
//! r₀ = μ − Σ rα … Inside this flow 0, there are a number of strict
//! priority classes, and within each priority class we operate the FIFO+
//! algorithm."  Datagram traffic sits in the lowest priority class.
//!
//! Design note (also recorded in DESIGN.md): pseudo-flow-0 packets receive
//! their WFQ virtual time stamps on arrival in aggregate-FIFO order; those
//! stamps decide *when* flow 0 gets service relative to the guaranteed
//! flows, while the inner priority/FIFO+ structure decides *which* flow-0
//! packet is transmitted when flow 0 wins.  Guaranteed flows' own stamps are
//! untouched, so the Parekh–Gallager isolation argument for them is
//! unaffected by any reordering inside flow 0.

use std::collections::VecDeque;

use ispn_core::arena::{SegQueue, SegmentPool};
use ispn_core::{FlowId, Packet, ServiceClass};
use ispn_sim::SimTime;

use crate::disc::{Dequeued, GuaranteedInstall, QueueDiscipline, SchedContext};
use crate::fifo::Fifo;
use crate::fifo_plus::{Averaging, FifoPlus};
use crate::gps::GpsClock;
use crate::priority::StrictPriority;

/// The sentinel in `slot_of` for flows with no guaranteed lane.
const NO_SLOT: u32 = u32::MAX;

/// One guaranteed flow's queue, held in a dense lane slot.  Lane occupancy
/// *is* the registration: a lane is created by
/// [`Unified::add_guaranteed_flow`] and freed by
/// [`Unified::remove_guaranteed_flow`].
#[derive(Debug)]
struct GuaranteedLane {
    flow: FlowId,
    queue: SegQueue<(Packet, SchedContext, f64)>,
    /// Virtual finish time of the queue's head packet, mirrored out of
    /// the pool so the per-dequeue scan reads only lane-local data.
    /// Meaningless (stale) while the queue is empty — refreshed on
    /// push-to-empty and after every pop.
    front_finish: f64,
}

/// The unified scheduler: WFQ isolation around priority + FIFO+ sharing.
pub struct Unified {
    gps: GpsClock,
    link_rate_bps: f64,
    /// Sum of guaranteed clock rates; flow 0 gets the remainder.
    guaranteed_rate_sum: f64,
    /// Shared pooled storage for the guaranteed lanes' packet queues;
    /// lane teardown returns its segments here.
    pool: SegmentPool<(Packet, SchedContext, f64)>,
    /// Dense guaranteed-flow lanes (O(1) membership and queue lookup via
    /// `slot_of`; freed lanes are recycled through `free_lanes`).
    lanes: Vec<GuaranteedLane>,
    /// `slot_of[flow.0]` is the flow's lane index, or `NO_SLOT`.
    slot_of: Vec<u32>,
    /// Recycled lane slots.
    free_lanes: Vec<u32>,
    /// Virtual finish stamps of flow-0 packets, in arrival order.
    flow0_stamps: VecDeque<f64>,
    /// The inner sharing structure of flow 0.
    flow0: StrictPriority<FifoPlusOrFifo>,
    len: usize,
}

/// Inner discipline used by the priority levels of flow 0: FIFO+ for the
/// predicted classes and plain FIFO for the datagram class (offsets are
/// meaningless for best-effort traffic).
enum FifoPlusOrFifo {
    Plus(FifoPlus),
    Plain(Fifo),
}

impl Default for FifoPlusOrFifo {
    fn default() -> Self {
        FifoPlusOrFifo::Plus(FifoPlus::new(Averaging::RunningMean))
    }
}

impl QueueDiscipline for FifoPlusOrFifo {
    fn enqueue(&mut self, now: SimTime, packet: Packet, ctx: SchedContext) {
        match self {
            FifoPlusOrFifo::Plus(q) => q.enqueue(now, packet, ctx),
            FifoPlusOrFifo::Plain(q) => q.enqueue(now, packet, ctx),
        }
    }
    fn dequeue(&mut self, now: SimTime) -> Option<Dequeued> {
        match self {
            FifoPlusOrFifo::Plus(q) => q.dequeue(now),
            FifoPlusOrFifo::Plain(q) => q.dequeue(now),
        }
    }
    fn len(&self) -> usize {
        match self {
            FifoPlusOrFifo::Plus(q) => q.len(),
            FifoPlusOrFifo::Plain(q) => q.len(),
        }
    }
    fn name(&self) -> &'static str {
        match self {
            FifoPlusOrFifo::Plus(q) => q.name(),
            FifoPlusOrFifo::Plain(q) => q.name(),
        }
    }
    fn state_bytes(&self) -> u64 {
        match self {
            FifoPlusOrFifo::Plus(q) => q.state_bytes(),
            FifoPlusOrFifo::Plain(q) => q.state_bytes(),
        }
    }
    fn reservation_bytes(&self) -> u64 {
        match self {
            FifoPlusOrFifo::Plus(q) => q.reservation_bytes(),
            FifoPlusOrFifo::Plain(q) => q.reservation_bytes(),
        }
    }
    fn pool_grow_events(&self) -> u64 {
        match self {
            FifoPlusOrFifo::Plus(q) => q.pool_grow_events(),
            FifoPlusOrFifo::Plain(q) => q.pool_grow_events(),
        }
    }
    fn pool_segments_high_water(&self) -> u64 {
        match self {
            FifoPlusOrFifo::Plus(q) => q.pool_segments_high_water(),
            FifoPlusOrFifo::Plain(q) => q.pool_segments_high_water(),
        }
    }
}

impl Unified {
    /// Create a unified scheduler for a link of `link_rate_bps` with
    /// `num_priorities` predicted-service priority classes (the paper's K),
    /// each running FIFO+ with the given averaging method, above a FIFO
    /// datagram class.
    pub fn new(link_rate_bps: f64, num_priorities: usize, averaging: Averaging) -> Self {
        assert!(link_rate_bps > 0.0);
        let mut gps = GpsClock::new(link_rate_bps);
        // Flow 0 initially owns the whole link.
        gps.set_rate(GpsClock::PSEUDO_FLOW, link_rate_bps);
        let levels = (0..num_priorities)
            .map(|_| FifoPlusOrFifo::Plus(FifoPlus::new(averaging)))
            .collect();
        Unified {
            gps,
            link_rate_bps,
            guaranteed_rate_sum: 0.0,
            pool: SegmentPool::new(),
            lanes: Vec::new(),
            slot_of: Vec::new(),
            free_lanes: Vec::new(),
            flow0_stamps: VecDeque::new(),
            flow0: StrictPriority::from_parts(levels, FifoPlusOrFifo::Plain(Fifo::new())),
            len: 0,
        }
    }

    /// Register a guaranteed flow with clock rate `rate_bps`, shrinking the
    /// pseudo-flow-0 rate accordingly (r₀ = μ − Σ rα).
    ///
    /// # Panics
    /// Panics if the guaranteed reservations would exceed the link rate —
    /// admission control must prevent that situation before it reaches the
    /// scheduler.
    pub fn add_guaranteed_flow(&mut self, flow: FlowId, rate_bps: f64) {
        assert!(rate_bps > 0.0);
        assert!(
            self.guaranteed_rate_sum + rate_bps < self.link_rate_bps,
            "guaranteed reservations ({} + {} bps) exceed the link rate {}",
            self.guaranteed_rate_sum,
            rate_bps,
            self.link_rate_bps
        );
        self.guaranteed_rate_sum += rate_bps;
        self.gps.set_rate(flow.0 as u64, rate_bps);
        self.gps.set_rate(
            GpsClock::PSEUDO_FLOW,
            self.link_rate_bps - self.guaranteed_rate_sum,
        );
        if self.slot(flow).is_none() {
            if self.slot_of.len() <= flow.index() {
                self.slot_of.resize(flow.index() + 1, NO_SLOT);
            }
            let slot = match self.free_lanes.pop() {
                Some(s) => {
                    self.lanes[s as usize].flow = flow;
                    s as usize
                }
                None => {
                    self.lanes.push(GuaranteedLane {
                        flow,
                        queue: SegQueue::new(),
                        front_finish: 0.0,
                    });
                    self.lanes.len() - 1
                }
            };
            self.slot_of[flow.index()] = slot as u32;
        }
    }

    /// The guaranteed lane slot of `flow`, if registered.
    fn slot(&self, flow: FlowId) -> Option<usize> {
        match self.slot_of.get(flow.index()) {
            Some(&s) if s != NO_SLOT => Some(s as usize),
            _ => None,
        }
    }

    /// Change the clock rate of an already-registered guaranteed flow (the
    /// Section-8 renegotiation path: "the client can request the network to
    /// change the reservation").
    ///
    /// Returns `false` (leaving the old rate in force) if the new total
    /// would reach the link rate; admission control normally prevents that.
    pub fn set_guaranteed_rate(&mut self, flow: FlowId, rate_bps: f64) -> bool {
        assert!(rate_bps > 0.0);
        let Some(old) = self.guaranteed_rate(flow) else {
            return false;
        };
        let new_sum = self.guaranteed_rate_sum - old + rate_bps;
        if new_sum >= self.link_rate_bps {
            return false;
        }
        self.guaranteed_rate_sum = new_sum;
        self.gps.set_rate(flow.0 as u64, rate_bps);
        self.gps
            .set_rate(GpsClock::PSEUDO_FLOW, self.link_rate_bps - new_sum);
        true
    }

    /// Tear down a guaranteed flow's reservation, returning its pseudo-flow-0
    /// rate to the shared pool (r₀ = μ − Σ rα).
    ///
    /// Packets of the flow still queued lose their reserved service and are
    /// re-queued at the tail of flow 0 (they are carried, like any traffic
    /// without a matching reservation, in the datagram class).  Returns
    /// `false` if the flow was not registered.
    pub fn remove_guaranteed_flow(&mut self, flow: FlowId, now: SimTime) -> bool {
        let Some(slot) = self.slot(flow) else {
            return false;
        };
        self.slot_of[flow.index()] = NO_SLOT;
        self.free_lanes.push(slot as u32);
        let rate = self
            .gps
            .remove(flow.0 as u64)
            .expect("registered guaranteed flow has a GPS rate");
        self.guaranteed_rate_sum -= rate;
        self.gps.set_rate(
            GpsClock::PSEUDO_FLOW,
            self.link_rate_bps - self.guaranteed_rate_sum,
        );
        while let Some((packet, ctx, _)) = self.pool.pop_front(&mut self.lanes[slot].queue) {
            // Demote to flow 0; the packet keeps its original arrival time
            // but is stamped (and therefore served) like a fresh datagram
            // arrival, matching its now-unreserved status.
            let finish = self.gps.stamp(GpsClock::PSEUDO_FLOW, packet.size_bits, now);
            self.flow0_stamps.push_back(finish);
            let demoted = SchedContext::new(ServiceClass::Datagram, ctx.arrival);
            self.flow0.enqueue(now, packet, demoted);
        }
        // The drained lane's last resident segment goes back to the pool.
        self.pool.release(&mut self.lanes[slot].queue);
        true
    }

    /// The clock rate currently assigned to pseudo-flow 0.
    pub fn flow0_rate_bps(&self) -> f64 {
        self.link_rate_bps - self.guaranteed_rate_sum
    }

    /// The clock rate of a registered guaranteed flow.
    pub fn guaranteed_rate(&self, flow: FlowId) -> Option<f64> {
        if self.slot(flow).is_some() {
            self.gps.rate(flow.0 as u64)
        } else {
            None
        }
    }

    /// Number of predicted priority classes.
    pub fn num_priorities(&self) -> usize {
        self.flow0.num_levels()
    }

    /// The FIFO+ class-average delay currently measured for a predicted
    /// priority level at this hop (used by measurement-based admission
    /// control).
    pub fn class_average_delay(&self, priority: usize) -> Option<SimTime> {
        match self.flow0.level(priority) {
            Some(FifoPlusOrFifo::Plus(q)) => Some(q.average_delay()),
            _ => None,
        }
    }
}

impl QueueDiscipline for Unified {
    fn enqueue(&mut self, now: SimTime, packet: Packet, ctx: SchedContext) {
        self.len += 1;
        let guaranteed_slot = if ctx.class == ServiceClass::Guaranteed {
            self.slot(packet.flow)
        } else {
            None
        };
        if let Some(slot) = guaranteed_slot {
            let finish = self.gps.stamp(packet.flow.0 as u64, packet.size_bits, now);
            if self.lanes[slot].queue.is_empty() {
                self.lanes[slot].front_finish = finish;
            }
            self.pool
                .push_back(&mut self.lanes[slot].queue, (packet, ctx, finish));
        } else {
            // Predicted, datagram, and any guaranteed-class packet whose
            // flow was never registered all share pseudo-flow 0.
            let finish = self.gps.stamp(GpsClock::PSEUDO_FLOW, packet.size_bits, now);
            self.flow0_stamps.push_back(finish);
            self.flow0.enqueue(now, packet, ctx);
        }
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Dequeued> {
        if self.len == 0 {
            return None;
        }
        self.gps.advance(now);

        // Find the guaranteed flow whose head packet carries the smallest
        // virtual finish stamp, ties to the lowest flow id (the winner the
        // old ascending-map scan produced, computed in any lane order).
        let mut best: Option<(f64, FlowId, usize)> = None;
        for (slot, lane) in self.lanes.iter().enumerate() {
            if lane.queue.is_empty() {
                continue;
            }
            let finish = lane.front_finish;
            let better = match best {
                None => true,
                Some((best_finish, best_flow, _)) => {
                    finish < best_finish || (finish == best_finish && lane.flow < best_flow)
                }
            };
            if better {
                best = Some((finish, lane.flow, slot));
            }
        }
        // Compare against the oldest flow-0 stamp (flow 0 is stamped in
        // aggregate FIFO order, so its front stamp is its smallest); on an
        // exact tie the guaranteed flow wins, as before.
        let mut winner = best.map(|(_, _, slot)| Some(slot));
        if !self.flow0.is_empty() {
            let finish = *self
                .flow0_stamps
                .front()
                .expect("flow0 stamps track flow0 occupancy");
            match best {
                None => winner = Some(None),
                Some((b, _, _)) if finish < b => winner = Some(None),
                _ => {}
            }
        }

        let winner = winner?;
        self.len -= 1;
        match winner {
            Some(slot) => {
                let (packet, ctx, _) = self
                    .pool
                    .pop_front(&mut self.lanes[slot].queue)
                    .expect("winner has a head packet");
                if let Some(&(_, _, finish)) = self.pool.front(&self.lanes[slot].queue) {
                    self.lanes[slot].front_finish = finish;
                }
                Some(Dequeued {
                    packet,
                    arrival: ctx.arrival,
                    class: ctx.class,
                })
            }
            None => {
                self.flow0_stamps.pop_front();
                self.flow0.dequeue(now)
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn name(&self) -> &'static str {
        "Unified"
    }

    fn install_guaranteed(&mut self, flow: FlowId, rate_bps: f64) -> GuaranteedInstall {
        if rate_bps <= 0.0 {
            return GuaranteedInstall::Refused;
        }
        if self.slot(flow).is_some() {
            return if self.set_guaranteed_rate(flow, rate_bps) {
                GuaranteedInstall::Installed
            } else {
                GuaranteedInstall::Refused
            };
        }
        if self.guaranteed_rate_sum + rate_bps >= self.link_rate_bps {
            return GuaranteedInstall::Refused;
        }
        self.add_guaranteed_flow(flow, rate_bps);
        GuaranteedInstall::Installed
    }

    fn remove_flow(&mut self, now: SimTime, flow: FlowId) -> bool {
        self.remove_guaranteed_flow(flow, now)
    }

    fn state_bytes(&self) -> u64 {
        (self.slot_of.len() * std::mem::size_of::<u32>()
            + self.lanes.len() * std::mem::size_of::<GuaranteedLane>()
            + self.flow0_stamps.len() * std::mem::size_of::<f64>()) as u64
            + self.pool.bytes()
            + self.flow0.state_bytes()
    }

    fn reservation_bytes(&self) -> u64 {
        self.gps.state_bytes() + self.flow0.reservation_bytes()
    }

    fn pool_grow_events(&self) -> u64 {
        self.pool.grow_events() + self.flow0.pool_grow_events()
    }

    fn pool_segments_high_water(&self) -> u64 {
        self.pool.segments_high_water() + self.flow0.pool_segments_high_water()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MBIT: f64 = 1_000_000.0;
    const PKT: u64 = 1000;

    fn pkt(flow: u32, seq: u64) -> Packet {
        Packet::data(FlowId(flow), seq, PKT, SimTime::ZERO)
    }

    fn guaranteed(t: SimTime) -> SchedContext {
        SchedContext::new(ServiceClass::Guaranteed, t)
    }

    fn predicted(p: u8, t: SimTime) -> SchedContext {
        SchedContext::new(ServiceClass::Predicted { priority: p }, t)
    }

    fn make() -> Unified {
        let mut u = Unified::new(MBIT, 2, Averaging::RunningMean);
        u.add_guaranteed_flow(FlowId(1), 170_000.0);
        u.add_guaranteed_flow(FlowId(2), 85_000.0);
        u
    }

    #[test]
    fn flow0_rate_is_link_minus_guaranteed_reservations() {
        let u = make();
        assert!((u.flow0_rate_bps() - 745_000.0).abs() < 1e-6);
        assert_eq!(u.guaranteed_rate(FlowId(1)), Some(170_000.0));
        assert_eq!(u.guaranteed_rate(FlowId(2)), Some(85_000.0));
        assert_eq!(u.guaranteed_rate(FlowId(9)), None);
        assert_eq!(u.num_priorities(), 2);
    }

    #[test]
    #[should_panic]
    fn over_reservation_panics() {
        let mut u = Unified::new(MBIT, 1, Averaging::RunningMean);
        u.add_guaranteed_flow(FlowId(1), 600_000.0);
        u.add_guaranteed_flow(FlowId(2), 600_000.0);
    }

    #[test]
    fn guaranteed_flow_protected_from_predicted_burst() {
        // A big burst of predicted traffic is queued; a guaranteed packet
        // arriving right after must still be served near the front because
        // its virtual finish time (at its reserved rate) is far smaller than
        // the accumulated finish times of the flow-0 backlog.
        let mut u = make();
        let t = SimTime::ZERO;
        for s in 0..50 {
            u.enqueue(t, pkt(10, s), predicted(0, t));
        }
        u.enqueue(t, pkt(1, 0), guaranteed(t));
        // The guaranteed packet's finish = 1000/170k ≈ 5.9 ms of virtual
        // time; flow 0's 7th packet already has a larger stamp, so the
        // guaranteed packet must appear within the first handful of
        // transmissions.
        let mut position = None;
        for i in 0..51 {
            let d = u.dequeue(t).unwrap();
            if d.packet.flow == FlowId(1) {
                position = Some(i);
                break;
            }
        }
        let position = position.expect("guaranteed packet served");
        assert!(position <= 8, "served at position {position}");
    }

    #[test]
    fn predicted_traffic_uses_leftover_bandwidth_in_priority_order() {
        let mut u = make();
        let t = SimTime::ZERO;
        u.enqueue(t, pkt(20, 0), predicted(1, t));
        u.enqueue(t, pkt(21, 0), predicted(0, t));
        u.enqueue(t, pkt(22, 0), SchedContext::datagram(t));
        // No guaranteed backlog: flow 0 drains, and within it priority 0
        // goes first, datagram last.
        let order: Vec<u32> = (0..3)
            .map(|_| u.dequeue(t).unwrap().packet.flow.0)
            .collect();
        assert_eq!(order, vec![21, 20, 22]);
    }

    #[test]
    fn unregistered_guaranteed_class_degrades_to_flow0() {
        let mut u = make();
        let t = SimTime::ZERO;
        // Flow 99 claims guaranteed class but was never registered: it is
        // carried, but inside flow 0's datagram queue rather than with a
        // reserved rate.
        u.enqueue(t, pkt(99, 0), guaranteed(t));
        assert_eq!(u.len(), 1);
        let d = u.dequeue(t).unwrap();
        assert_eq!(d.packet.flow, FlowId(99));
    }

    #[test]
    fn work_conserving_and_exhaustive() {
        let mut u = make();
        let t = SimTime::ZERO;
        let mut total = 0;
        for s in 0..10 {
            u.enqueue(t, pkt(1, s), guaranteed(t));
            u.enqueue(t, pkt(2, s), guaranteed(t));
            u.enqueue(t, pkt(30, s), predicted(0, t));
            u.enqueue(t, pkt(31, s), predicted(1, t));
            u.enqueue(t, pkt(32, s), SchedContext::datagram(t));
            total += 5;
        }
        assert_eq!(u.len(), total);
        let mut served = 0;
        while u.dequeue(t).is_some() {
            served += 1;
        }
        assert_eq!(served, total);
        assert!(u.is_empty());
        assert!(u.dequeue(t).is_none());
    }

    #[test]
    fn guaranteed_flows_share_by_clock_rate_between_themselves() {
        let mut u = Unified::new(MBIT, 1, Averaging::RunningMean);
        u.add_guaranteed_flow(FlowId(1), 400_000.0);
        u.add_guaranteed_flow(FlowId(2), 200_000.0);
        let t = SimTime::ZERO;
        for s in 0..30 {
            u.enqueue(t, pkt(1, s), guaranteed(t));
            u.enqueue(t, pkt(2, s), guaranteed(t));
        }
        let mut first_fifteen = [0u32; 3];
        for _ in 0..15 {
            first_fifteen[u.dequeue(t).unwrap().packet.flow.0 as usize] += 1;
        }
        // Flow 1 has twice the rate, so roughly 10-of-15 vs 5-of-15.
        assert!(first_fifteen[1] >= 9, "{first_fifteen:?}");
        assert!(first_fifteen[2] >= 4, "{first_fifteen:?}");
    }

    #[test]
    fn class_average_delay_exposed_for_admission_control() {
        let mut u = make();
        let t0 = SimTime::ZERO;
        u.enqueue(t0, pkt(30, 0), predicted(0, t0));
        let _ = u.dequeue(SimTime::from_millis(3)).unwrap();
        let avg = u.class_average_delay(0).unwrap();
        assert!((avg.as_millis_f64() - 3.0).abs() < 1e-9);
        // The datagram queue has no FIFO+ average.
        assert_eq!(u.class_average_delay(5), None);
        assert_eq!(u.name(), "Unified");
    }

    #[test]
    fn remove_guaranteed_flow_returns_rate_to_flow0() {
        let mut u = make();
        assert!((u.flow0_rate_bps() - 745_000.0).abs() < 1e-6);
        assert!(u.remove_guaranteed_flow(FlowId(1), SimTime::ZERO));
        assert!((u.flow0_rate_bps() - 915_000.0).abs() < 1e-6);
        assert_eq!(u.guaranteed_rate(FlowId(1)), None);
        // Removing again is a no-op.
        assert!(!u.remove_guaranteed_flow(FlowId(1), SimTime::ZERO));
    }

    #[test]
    fn remove_guaranteed_flow_demotes_queued_packets() {
        let mut u = make();
        let t = SimTime::ZERO;
        u.enqueue(t, pkt(1, 0), guaranteed(t));
        u.enqueue(t, pkt(1, 1), guaranteed(t));
        assert_eq!(u.len(), 2);
        assert!(u.remove_guaranteed_flow(FlowId(1), t));
        // The packets are still carried (now in flow 0) and drain fully.
        assert_eq!(u.len(), 2);
        let a = u.dequeue(t).unwrap();
        let b = u.dequeue(t).unwrap();
        assert_eq!(a.packet.flow, FlowId(1));
        assert_eq!(b.packet.flow, FlowId(1));
        assert!(u.is_empty());
    }

    #[test]
    fn set_guaranteed_rate_adjusts_the_split() {
        let mut u = make();
        assert!(u.set_guaranteed_rate(FlowId(1), 300_000.0));
        assert_eq!(u.guaranteed_rate(FlowId(1)), Some(300_000.0));
        assert!((u.flow0_rate_bps() - 615_000.0).abs() < 1e-6);
        // Unknown flow or an over-reservation is refused.
        assert!(!u.set_guaranteed_rate(FlowId(9), 100_000.0));
        assert!(!u.set_guaranteed_rate(FlowId(1), 1_000_000.0));
        assert_eq!(u.guaranteed_rate(FlowId(1)), Some(300_000.0));
    }

    #[test]
    fn discipline_trait_install_and_remove() {
        let mut u = Unified::new(MBIT, 2, Averaging::RunningMean);
        let d: &mut dyn QueueDiscipline = &mut u;
        assert_eq!(
            d.install_guaranteed(FlowId(5), 200_000.0),
            GuaranteedInstall::Installed
        );
        assert_eq!(
            d.install_guaranteed(FlowId(5), 250_000.0), // update
            GuaranteedInstall::Installed
        );
        assert_eq!(
            d.install_guaranteed(FlowId(6), 900_000.0), // would overflow
            GuaranteedInstall::Refused
        );
        assert!(d.remove_flow(SimTime::ZERO, FlowId(5)));
        assert!(!d.remove_flow(SimTime::ZERO, FlowId(5)));
    }

    #[test]
    fn fifo_plus_offsets_written_for_predicted_but_not_datagram() {
        let mut u = make();
        let t = SimTime::ZERO;
        u.enqueue(t, pkt(30, 0), predicted(0, t));
        u.enqueue(t, pkt(40, 0), SchedContext::datagram(t));
        let now = SimTime::from_millis(5);
        let first = u.dequeue(now).unwrap();
        let second = u.dequeue(now).unwrap();
        // Predicted packet got a (positive) offset recorded; datagram stays 0.
        assert_eq!(first.packet.flow, FlowId(30));
        assert!(first.packet.jitter_offset_ns > 0);
        assert_eq!(second.packet.jitter_offset_ns, 0);
    }
}
