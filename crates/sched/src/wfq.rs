//! Weighted Fair Queueing / PGPS (Section 4).
//!
//! "The packetized version of WFQ is merely, at any time t when the next
//! packet to be transmitted must be chosen, to select the packet with the
//! minimal E(t)" — equivalently, to transmit packets in increasing order of
//! the virtual finishing time they would have in the fluid GPS system.
//! Parekh and Gallager proved that, when every switch gives a flow the same
//! clock rate and the clock rates sum to no more than the link speed, this
//! discipline delivers the `b(r)/r` worst-case queueing bound, independent
//! of how every other flow behaves.  That isolation is exactly what the
//! paper's guaranteed service relies on.
//!
//! The implementation keeps one FIFO of packets per flow plus a shared
//! [`GpsClock`]; each arriving packet is stamped with its virtual finish
//! time and dequeue picks the smallest stamp among the flows' head packets
//! (per-flow stamps are non-decreasing so only heads need to be compared).

use std::collections::BTreeMap;

use ispn_core::arena::{SegQueue, SegmentPool};
use ispn_core::{FlowId, Packet};
use ispn_sim::SimTime;

use crate::disc::{Dequeued, GuaranteedInstall, QueueDiscipline, SchedContext};
use crate::gps::GpsClock;

/// The sentinel in `slot_of` for flows with no lane.
const NO_SLOT: u32 = u32::MAX;

/// One flow's per-link queue, held in a dense lane slot.  The queue is a
/// handle into the scheduler's shared segment pool, so lanes own no heap
/// storage of their own.
#[derive(Debug)]
struct Lane {
    flow: FlowId,
    queue: SegQueue<(Packet, SchedContext, f64)>,
    /// Virtual finish time of the queue's head packet, mirrored out of
    /// the pool so the per-dequeue scan reads only lane-local data.
    /// Meaningless (stale) while the queue is empty — refreshed on
    /// push-to-empty and after every pop.
    front_finish: f64,
}

/// Packetized Weighted Fair Queueing.
#[derive(Debug)]
pub struct Wfq {
    gps: GpsClock,
    link_rate_bps: f64,
    /// Clock rate assigned to flows that were never explicitly registered.
    default_rate_bps: f64,
    /// Shared queue storage for every lane: fixed-capacity segments with
    /// a free list, so steady-state enqueue/dequeue traffic and lane
    /// teardown perform no allocations after warm-up.
    pool: SegmentPool<(Packet, SchedContext, f64)>,
    /// Dense per-flow lanes, indexed by the slot in `slot_of` — the
    /// data-path table (O(1) lookup on enqueue, linear scan of lane heads
    /// on dequeue).  Lanes whose queue is empty are skipped by the scan.
    /// A lane is recycled through `free_lanes` when its flow's rate is
    /// removed: immediately if the queue is empty, otherwise as soon as
    /// the backlog drains (the deferred-teardown path in `dequeue`), so
    /// freed lanes always return their storage to the pool.
    lanes: Vec<Lane>,
    /// `slot_of[flow.0]` is the flow's lane index, or `NO_SLOT`.
    slot_of: Vec<u32>,
    /// Recycled lane slots.
    free_lanes: Vec<u32>,
    /// Clock rates installed through the reservation path
    /// ([`install_guaranteed`]): their sum must stay below the link rate so
    /// a link without an admission controller still refuses oversubscribed
    /// guaranteed reservations, like [`Unified`](crate::Unified) does.
    /// Rates assigned directly with [`set_rate`](Wfq::set_rate) (the static
    /// relative-share path) are not counted.
    ///
    /// [`install_guaranteed`]: crate::QueueDiscipline::install_guaranteed
    guaranteed: BTreeMap<FlowId, f64>,
    /// Running Σ of `guaranteed` values (kept in step on install/remove,
    /// like `Unified::guaranteed_rate_sum`).
    guaranteed_rate_sum: f64,
    len: usize,
    /// Monotone counter used to break exact ties in virtual finish times
    /// deterministically (first-stamped wins).
    stamp_seq: u64,
}

impl Wfq {
    /// Create a WFQ scheduler for a link of `link_rate_bps`.
    ///
    /// Flows that are not registered with [`set_rate`] before their first
    /// packet arrives are given `default_rate_bps`.  For the plain Fair
    /// Queueing of the paper's Tables 1 and 2 ("equal clock rates") simply
    /// leave every flow on the same default.
    ///
    /// [`set_rate`]: Wfq::set_rate
    pub fn new(link_rate_bps: f64, default_rate_bps: f64) -> Self {
        assert!(default_rate_bps > 0.0);
        Wfq {
            gps: GpsClock::new(link_rate_bps),
            link_rate_bps,
            default_rate_bps,
            pool: SegmentPool::new(),
            lanes: Vec::new(),
            slot_of: Vec::new(),
            free_lanes: Vec::new(),
            guaranteed: BTreeMap::new(),
            guaranteed_rate_sum: 0.0,
            len: 0,
            stamp_seq: 0,
        }
    }

    /// Convenience constructor: equal-share Fair Queueing over an expected
    /// number of flows.
    pub fn equal_share(link_rate_bps: f64, expected_flows: usize) -> Self {
        let n = expected_flows.max(1) as f64;
        Wfq::new(link_rate_bps, link_rate_bps / n)
    }

    /// Assign flow `flow` the clock rate `rate_bps` (Section 4: "the clock
    /// rate of a flow represents the relative share of the link bandwidth
    /// this flow is entitled to").
    pub fn set_rate(&mut self, flow: FlowId, rate_bps: f64) {
        self.gps.set_rate(flow.0 as u64, rate_bps);
    }

    /// The clock rate currently assigned to `flow`, if registered.
    pub fn rate(&self, flow: FlowId) -> Option<f64> {
        self.gps.rate(flow.0 as u64)
    }

    /// Deregister a flow (reservation teardown), returning its clock rate.
    ///
    /// Any packets of the flow still queued are served at their existing
    /// virtual-time stamps; if the flow sends again later it is treated as
    /// unregistered (and re-enters at the default clock rate).
    pub fn remove_flow_rate(&mut self, flow: FlowId) -> Option<f64> {
        if let Some(rate) = self.guaranteed.remove(&flow) {
            self.guaranteed_rate_sum -= rate;
        }
        if let Some(slot) = self.slot(flow) {
            if self.lanes[slot].queue.is_empty() {
                self.free_lane(slot);
            }
            // A backlogged lane keeps serving its queued packets at their
            // existing stamps; `dequeue` frees it (and returns its
            // segments to the pool) once the backlog drains.
        }
        self.gps.remove(flow.0 as u64)
    }

    /// Return `slot`'s storage to the pool and recycle the lane.
    fn free_lane(&mut self, slot: usize) {
        let flow = self.lanes[slot].flow;
        self.pool.release(&mut self.lanes[slot].queue);
        self.slot_of[flow.index()] = NO_SLOT;
        self.free_lanes.push(slot as u32);
    }

    /// Access the underlying GPS clock (used by tests and by the fluid
    /// reference comparison).
    pub fn gps(&self) -> &GpsClock {
        &self.gps
    }

    fn ensure_registered(&mut self, flow: FlowId) {
        if self.gps.rate(flow.0 as u64).is_none() {
            self.gps.set_rate(flow.0 as u64, self.default_rate_bps);
        }
    }

    /// The flow's lane slot, if it has one.
    fn slot(&self, flow: FlowId) -> Option<usize> {
        match self.slot_of.get(flow.index()) {
            Some(&s) if s != NO_SLOT => Some(s as usize),
            _ => None,
        }
    }

    /// The flow's lane slot, allocating one (recycled or fresh) if needed.
    fn slot_or_insert(&mut self, flow: FlowId) -> usize {
        if let Some(slot) = self.slot(flow) {
            return slot;
        }
        if self.slot_of.len() <= flow.index() {
            self.slot_of.resize(flow.index() + 1, NO_SLOT);
        }
        let slot = match self.free_lanes.pop() {
            Some(s) => {
                self.lanes[s as usize].flow = flow;
                s as usize
            }
            None => {
                self.lanes.push(Lane {
                    flow,
                    queue: SegQueue::new(),
                    front_finish: 0.0,
                });
                self.lanes.len() - 1
            }
        };
        self.slot_of[flow.index()] = slot as u32;
        slot
    }
}

impl QueueDiscipline for Wfq {
    fn enqueue(&mut self, now: SimTime, packet: Packet, ctx: SchedContext) {
        self.ensure_registered(packet.flow);
        let finish = self.gps.stamp(packet.flow.0 as u64, packet.size_bits, now);
        let slot = self.slot_or_insert(packet.flow);
        if self.lanes[slot].queue.is_empty() {
            self.lanes[slot].front_finish = finish;
        }
        self.pool
            .push_back(&mut self.lanes[slot].queue, (packet, ctx, finish));
        self.len += 1;
        self.stamp_seq += 1;
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Dequeued> {
        if self.len == 0 {
            return None;
        }
        self.gps.advance(now);
        // Pick the flow whose head packet has the smallest virtual finish
        // time, breaking exact ties by lowest flow id — the same winner the
        // old ascending-map scan with a strict `<` produced, but computable
        // in any lane order.
        let mut best: Option<(f64, FlowId, usize)> = None;
        for (slot, lane) in self.lanes.iter().enumerate() {
            if lane.queue.is_empty() {
                continue;
            }
            let finish = lane.front_finish;
            let better = match best {
                None => true,
                Some((best_finish, best_flow, _)) => {
                    finish < best_finish || (finish == best_finish && lane.flow < best_flow)
                }
            };
            if better {
                best = Some((finish, lane.flow, slot));
            }
        }
        let (_, flow, slot) = best?;
        let (packet, ctx, _) = self
            .pool
            .pop_front(&mut self.lanes[slot].queue)
            .expect("selected lane has a head packet");
        self.len -= 1;
        if let Some(&(_, _, finish)) = self.pool.front(&self.lanes[slot].queue) {
            self.lanes[slot].front_finish = finish;
        } else if self.gps.rate(flow.0 as u64).is_none() {
            // Deferred teardown: a lane whose flow was removed while
            // backlogged is recycled once its last queued packet leaves
            // (`ensure_registered` gives every enqueueing flow a rate, so a
            // rate-less flow here can only mean `remove_flow_rate` ran).
            self.free_lane(slot);
        }
        Some(Dequeued {
            packet,
            arrival: ctx.arrival,
            class: ctx.class,
        })
    }

    fn len(&self) -> usize {
        self.len
    }

    fn name(&self) -> &'static str {
        "WFQ"
    }

    fn install_guaranteed(&mut self, flow: FlowId, rate_bps: f64) -> GuaranteedInstall {
        if rate_bps <= 0.0 {
            return GuaranteedInstall::Refused;
        }
        // Parekh–Gallager needs the guaranteed clock rates to sum below the
        // link speed; refuse reservations that would break that, so the
        // admission veto in `Network::admit_flow_on_link` holds on WFQ
        // links with no admission controller too.
        let old = self.guaranteed.get(&flow).copied().unwrap_or(0.0);
        let new_sum = self.guaranteed_rate_sum - old + rate_bps;
        if new_sum >= self.link_rate_bps {
            return GuaranteedInstall::Refused;
        }
        self.guaranteed_rate_sum = new_sum;
        self.guaranteed.insert(flow, rate_bps);
        self.set_rate(flow, rate_bps);
        GuaranteedInstall::Installed
    }

    fn remove_flow(&mut self, _now: SimTime, flow: FlowId) -> bool {
        self.remove_flow_rate(flow).is_some()
    }

    fn state_bytes(&self) -> u64 {
        (self.slot_of.len() * std::mem::size_of::<u32>()
            + self.lanes.len() * std::mem::size_of::<Lane>()) as u64
            + self.pool.bytes()
    }

    fn reservation_bytes(&self) -> u64 {
        (self.guaranteed.len() * std::mem::size_of::<(FlowId, f64)>()) as u64
            + self.gps.state_bytes()
    }

    fn pool_grow_events(&self) -> u64 {
        self.pool.grow_events()
    }

    fn pool_segments_high_water(&self) -> u64 {
        self.pool.segments_high_water()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispn_core::ServiceClass;

    const MBIT: f64 = 1_000_000.0;
    const PKT: u64 = 1000;

    fn pkt(flow: u32, seq: u64) -> Packet {
        Packet::data(FlowId(flow), seq, PKT, SimTime::ZERO)
    }

    fn ctx(t: SimTime) -> SchedContext {
        SchedContext::new(ServiceClass::Guaranteed, t)
    }

    #[test]
    fn equal_rates_interleave_backlogged_flows() {
        // Flow 1 dumps a burst of 4; flow 2 dumps a burst of 4 at the same
        // instant.  With equal clock rates WFQ alternates between them
        // instead of serving one burst first.
        let mut q = Wfq::equal_share(MBIT, 2);
        let t = SimTime::ZERO;
        for seq in 0..4 {
            q.enqueue(t, pkt(1, seq), ctx(t));
        }
        for seq in 0..4 {
            q.enqueue(t, pkt(2, seq), ctx(t));
        }
        let order: Vec<u32> = (0..8)
            .map(|_| q.dequeue(t).unwrap().packet.flow.0)
            .collect();
        assert_eq!(order, vec![1, 2, 1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn fifo_among_packets_of_one_flow() {
        let mut q = Wfq::equal_share(MBIT, 1);
        let t = SimTime::ZERO;
        for seq in 0..5 {
            q.enqueue(t, pkt(1, seq), ctx(t));
        }
        let seqs: Vec<u64> = (0..5).map(|_| q.dequeue(t).unwrap().packet.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn weights_bias_service_toward_higher_clock_rate() {
        // Flow 1 has 3x the clock rate of flow 2; over a long backlog it
        // should receive roughly 3x the service.
        let mut q = Wfq::new(MBIT, 100_000.0);
        q.set_rate(FlowId(1), 750_000.0);
        q.set_rate(FlowId(2), 250_000.0);
        let t = SimTime::ZERO;
        for seq in 0..40 {
            q.enqueue(t, pkt(1, seq), ctx(t));
            q.enqueue(t, pkt(2, seq), ctx(t));
        }
        // Serve the first 20 packets and count per-flow service.
        let mut served = [0u32; 3];
        for _ in 0..20 {
            let d = q.dequeue(t).unwrap();
            served[d.packet.flow.0 as usize] += 1;
        }
        assert_eq!(served[1] + served[2], 20);
        assert!(served[1] >= 14 && served[1] <= 16, "served {served:?}");
    }

    #[test]
    fn isolation_a_burst_does_not_delay_a_paced_flow() {
        // Flow 9 (the "misbehaving" source) dumps 50 packets at t=0.
        // Flow 1 sends a single packet at t=0.  Under WFQ with equal rates,
        // flow 1's packet is served within the first two transmissions.
        let mut q = Wfq::equal_share(MBIT, 2);
        let t = SimTime::ZERO;
        for seq in 0..50 {
            q.enqueue(t, pkt(9, seq), ctx(t));
        }
        q.enqueue(t, pkt(1, 0), ctx(t));
        let first = q.dequeue(t).unwrap();
        let second = q.dequeue(t).unwrap();
        assert!(
            first.packet.flow == FlowId(1) || second.packet.flow == FlowId(1),
            "paced flow must be served among the first two packets"
        );
    }

    #[test]
    fn idle_flow_does_not_accumulate_credit() {
        // A flow that was idle for a long time does not get to monopolize
        // the link when it finally sends (its start time is max(V, F_prev)).
        let mut q = Wfq::equal_share(MBIT, 2);
        // Flow 1 keeps the link busy from t=0.
        for seq in 0..10 {
            q.enqueue(SimTime::ZERO, pkt(1, seq), ctx(SimTime::ZERO));
        }
        // Serve a few to advance virtual time.
        let mut now = SimTime::ZERO;
        for _ in 0..5 {
            now += SimTime::MILLISECOND;
            let _ = q.dequeue(now).unwrap();
        }
        // Flow 2 wakes up and sends 3 packets; it should share from now on,
        // not claim the 5 ms of service it "missed".
        for seq in 0..3 {
            q.enqueue(now, pkt(2, seq), ctx(now));
        }
        let mut flow2_served = 0;
        for _ in 0..4 {
            now += SimTime::MILLISECOND;
            if q.dequeue(now).unwrap().packet.flow == FlowId(2) {
                flow2_served += 1;
            }
        }
        // In 4 transmissions flow 2 gets roughly half, not all of them.
        assert!((1..=3).contains(&flow2_served));
    }

    #[test]
    fn work_conserving_across_flow_mix() {
        let mut q = Wfq::equal_share(MBIT, 4);
        let t = SimTime::ZERO;
        for f in 0..4u32 {
            for s in 0..3 {
                q.enqueue(t, pkt(f, s), ctx(t));
            }
        }
        let mut n = 0;
        while q.dequeue(t).is_some() {
            n += 1;
        }
        assert_eq!(n, 12);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn remove_flow_rate_deregisters() {
        let mut q = Wfq::new(MBIT, 100_000.0);
        q.set_rate(FlowId(1), 400_000.0);
        assert_eq!(q.remove_flow_rate(FlowId(1)), Some(400_000.0));
        assert_eq!(q.rate(FlowId(1)), None);
        assert_eq!(q.remove_flow_rate(FlowId(1)), None);
        // Via the trait: install then remove.
        let d: &mut dyn QueueDiscipline = &mut q;
        assert_eq!(
            d.install_guaranteed(FlowId(2), 250_000.0),
            GuaranteedInstall::Installed
        );
        assert!(d.remove_flow(SimTime::ZERO, FlowId(2)));
        // Queued packets of a removed flow still drain.
        q.enqueue(SimTime::ZERO, pkt(3, 0), ctx(SimTime::ZERO));
        q.remove_flow_rate(FlowId(3));
        assert_eq!(q.dequeue(SimTime::ZERO).unwrap().packet.flow, FlowId(3));
    }

    #[test]
    fn install_guaranteed_refuses_oversubscription() {
        let mut q = Wfq::new(MBIT, 100_000.0);
        assert_eq!(
            q.install_guaranteed(FlowId(1), 600_000.0),
            GuaranteedInstall::Installed
        );
        // 600k + 400k would reach the link rate: refused, rate untouched.
        assert_eq!(
            q.install_guaranteed(FlowId(2), 400_000.0),
            GuaranteedInstall::Refused
        );
        assert_eq!(q.rate(FlowId(2)), None);
        // Updating an existing reservation accounts for its old rate.
        assert_eq!(
            q.install_guaranteed(FlowId(1), 500_000.0),
            GuaranteedInstall::Installed
        );
        assert_eq!(
            q.install_guaranteed(FlowId(2), 400_000.0),
            GuaranteedInstall::Installed
        );
        // Removal returns headroom.
        assert!(q.remove_flow(SimTime::ZERO, FlowId(2)));
        assert_eq!(
            q.install_guaranteed(FlowId(3), 400_000.0),
            GuaranteedInstall::Installed
        );
        // Rates set directly (static shares) are not counted against the
        // reservation budget.
        q.set_rate(FlowId(9), 900_000.0);
        assert_eq!(
            q.install_guaranteed(FlowId(3), 450_000.0),
            GuaranteedInstall::Installed
        );
    }

    #[test]
    fn default_rate_applies_to_unregistered_flows() {
        let mut q = Wfq::new(MBIT, 123_456.0);
        q.enqueue(SimTime::ZERO, pkt(7, 0), ctx(SimTime::ZERO));
        assert_eq!(q.rate(FlowId(7)), Some(123_456.0));
        assert_eq!(q.rate(FlowId(8)), None);
        assert_eq!(q.name(), "WFQ");
        assert!(q.gps().busy());
    }
}
