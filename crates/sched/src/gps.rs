//! The fluid GPS reference system and its virtual clock.
//!
//! Packetized WFQ (PGPS) needs, for every arriving packet, the *virtual
//! finishing time* the packet would have in the fluid Generalized Processor
//! Sharing system in which every backlogged flow α drains at rate
//! `rα / Σ_{β active} rβ` of the link (Section 4 of the paper gives exactly
//! this fluid-flow model).  [`GpsClock`] tracks that virtual time exactly,
//! using the classic "iterated deletion" algorithm: between packet events
//! the virtual time advances at slope `μ / Σ_{active} rβ`, and whenever it
//! crosses the last virtual finish of an active flow that flow leaves the
//! active set and the slope steepens.
//!
//! The same clock is shared by [`crate::Wfq`] (every flow is its own GPS
//! flow) and [`crate::Unified`] (guaranteed flows are GPS flows; all
//! predicted and datagram traffic is aggregated into pseudo-flow 0).

use ispn_sim::SimTime;

/// Identifier of a GPS flow inside one scheduler instance.
///
/// `u64` rather than `FlowId` so that schedulers can add pseudo-flows (the
/// unified scheduler uses [`GpsClock::PSEUDO_FLOW`] for the predicted +
/// datagram aggregate).
pub type GpsFlowKey = u64;

#[derive(Debug, Clone)]
struct GpsFlow {
    /// Clock rate rα in bits per second.
    rate_bps: f64,
    /// Virtual finish time of the flow's most recently arrived bit.
    last_finish: f64,
}

/// Exact GPS virtual time for one link.
///
/// Per-flow state lives in a `Vec` kept sorted by key, not a map: flow
/// counts per link are small-to-moderate, so binary search beats tree
/// traversal on the stamp path, and `advance`'s summation still iterates in
/// ascending key order — the f64 accumulation order that the byte-identity
/// goldens pin down.
#[derive(Debug, Clone)]
pub struct GpsClock {
    link_rate_bps: f64,
    virtual_time: f64,
    last_update: SimTime,
    /// Sorted ascending by key (binary-searched; insertion keeps order).
    flows: Vec<(GpsFlowKey, GpsFlow)>,
}

impl GpsClock {
    /// The flow key the unified scheduler uses for the predicted/datagram
    /// aggregate ("flow 0" in the paper's description).
    pub const PSEUDO_FLOW: GpsFlowKey = u64::MAX;

    /// Create a clock for a link of the given speed.
    pub fn new(link_rate_bps: f64) -> Self {
        assert!(link_rate_bps > 0.0, "link rate must be positive");
        GpsClock {
            link_rate_bps,
            virtual_time: 0.0,
            last_update: SimTime::ZERO,
            flows: Vec::new(),
        }
    }

    /// Index of `key` in the sorted flow vector, or where it would insert.
    fn find(&self, key: GpsFlowKey) -> Result<usize, usize> {
        self.flows.binary_search_by_key(&key, |(k, _)| *k)
    }

    /// Register a flow or update its clock rate.
    ///
    /// The Parekh–Gallager guarantee requires `Σ rα ≤ μ`; this is the
    /// caller's responsibility (checked by admission control, not here),
    /// but the rate itself must be positive.
    pub fn set_rate(&mut self, key: GpsFlowKey, rate_bps: f64) {
        assert!(rate_bps > 0.0, "clock rate must be positive");
        match self.find(key) {
            Ok(i) => self.flows[i].1.rate_bps = rate_bps,
            Err(i) => self.flows.insert(
                i,
                (
                    key,
                    GpsFlow {
                        rate_bps,
                        last_finish: 0.0,
                    },
                ),
            ),
        }
    }

    /// The clock rate of a registered flow.
    pub fn rate(&self, key: GpsFlowKey) -> Option<f64> {
        self.find(key).ok().map(|i| self.flows[i].1.rate_bps)
    }

    /// Deregister a flow, returning its clock rate if it was registered.
    ///
    /// Intended for reservation teardown: the caller should only remove a
    /// flow whose packets have drained (its backlog, if any, simply leaves
    /// the fluid system, which makes the remaining flows' service strictly
    /// better — never worse — so existing guarantees still hold).
    pub fn remove(&mut self, key: GpsFlowKey) -> Option<f64> {
        self.find(key).ok().map(|i| self.flows.remove(i).1.rate_bps)
    }

    /// Sum of the clock rates of all registered flows.
    pub fn total_rate(&self) -> f64 {
        self.flows.iter().map(|(_, f)| f.rate_bps).sum()
    }

    /// Number of registered flows (pseudo-flows included).
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// Structural size of the per-flow clock state in bytes (entry count
    /// × entry size — the deterministic estimation rule shared by the
    /// footprint accounting in `ispn-net`).
    pub fn state_bytes(&self) -> u64 {
        (self.flows.len() * std::mem::size_of::<(GpsFlowKey, GpsFlow)>()) as u64
    }

    /// The link rate this clock was built for.
    pub fn link_rate_bps(&self) -> f64 {
        self.link_rate_bps
    }

    /// The current virtual time (after the most recent [`advance`]).
    ///
    /// [`advance`]: GpsClock::advance
    pub fn virtual_time(&self) -> f64 {
        self.virtual_time
    }

    /// `true` if the fluid system currently has backlog.
    pub fn busy(&self) -> bool {
        self.flows
            .iter()
            .any(|(_, f)| f.last_finish > self.virtual_time + 1e-15)
    }

    /// Advance the virtual time to real time `now`, performing iterated
    /// deletion of flows that empty in the fluid system along the way.
    pub fn advance(&mut self, now: SimTime) {
        if now <= self.last_update {
            return;
        }
        let mut remaining = (now - self.last_update).as_secs_f64();
        self.last_update = now;

        loop {
            // Flows still backlogged in the fluid system.
            let mut active_rate = 0.0;
            let mut next_finish = f64::INFINITY;
            for (_, f) in &self.flows {
                if f.last_finish > self.virtual_time + 1e-15 {
                    active_rate += f.rate_bps;
                    if f.last_finish < next_finish {
                        next_finish = f.last_finish;
                    }
                }
            }
            if active_rate == 0.0 {
                // Fluid system idle: virtual time does not need to advance
                // (new arrivals start from max(V, last_finish) anyway).
                return;
            }
            let slope = self.link_rate_bps / active_rate;
            let dv_to_next = next_finish - self.virtual_time;
            let dt_to_next = dv_to_next / slope;
            if dt_to_next <= remaining {
                // The nearest flow empties within the interval; jump there
                // and re-evaluate the active set.
                self.virtual_time = next_finish;
                remaining -= dt_to_next;
                if remaining <= 0.0 {
                    return;
                }
            } else {
                self.virtual_time += remaining * slope;
                return;
            }
        }
    }

    /// Record the arrival of `size_bits` of flow `key` at real time `now`
    /// and return the packet's virtual finishing time
    /// `F = max(V(now), F_prev) + L/rα`.
    ///
    /// # Panics
    /// Panics if the flow has not been registered with [`set_rate`]
    /// (callers decide their own policy for unknown flows).
    ///
    /// [`set_rate`]: GpsClock::set_rate
    pub fn stamp(&mut self, key: GpsFlowKey, size_bits: u64, now: SimTime) -> f64 {
        self.advance(now);
        let v = self.virtual_time;
        let i = self
            .find(key)
            .expect("flow must be registered with set_rate before stamping");
        let flow = &mut self.flows[i].1;
        let start = v.max(flow.last_finish);
        let finish = start + size_bits as f64 / flow.rate_bps;
        flow.last_finish = finish;
        finish
    }

    /// Forget all per-flow backlog state but keep rates (used by tests).
    pub fn reset(&mut self) {
        self.virtual_time = 0.0;
        self.last_update = SimTime::ZERO;
        for (_, f) in &mut self.flows {
            f.last_finish = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MBIT: f64 = 1_000_000.0;

    #[test]
    fn single_flow_finish_times_accumulate_at_flow_rate() {
        let mut gps = GpsClock::new(MBIT);
        gps.set_rate(1, 100_000.0); // 100 kbit/s
                                    // Two 1000-bit packets arriving back to back at t=0: finishes at
                                    // 10 ms and 20 ms of *virtual* time (1000 bits / 100 kbit/s each).
        let f1 = gps.stamp(1, 1000, SimTime::ZERO);
        let f2 = gps.stamp(1, 1000, SimTime::ZERO);
        assert!((f1 - 0.01).abs() < 1e-12);
        assert!((f2 - 0.02).abs() < 1e-12);
    }

    #[test]
    fn virtual_time_advances_faster_when_few_flows_active() {
        let mut gps = GpsClock::new(MBIT);
        gps.set_rate(1, 500_000.0);
        gps.set_rate(2, 500_000.0);
        // Only flow 1 is backlogged: with Σ_active r = 0.5 Mbit/s the
        // virtual clock runs at slope 2 (relative to real time).
        let f1 = gps.stamp(1, 1000, SimTime::ZERO);
        assert!((f1 - 0.002).abs() < 1e-12);
        gps.advance(SimTime::from_micros(500));
        // 500 µs of real time at slope 2 = 1 ms of virtual time.
        assert!((gps.virtual_time() - 0.001).abs() < 1e-12);
        assert!(gps.busy());
        gps.advance(SimTime::from_millis(10));
        // The flow emptied (at virtual 2 ms = real 1 ms); after that the
        // clock stops advancing because the fluid system is idle.
        assert!((gps.virtual_time() - 0.002).abs() < 1e-12);
        assert!(!gps.busy());
    }

    #[test]
    fn iterated_deletion_changes_slope() {
        let mut gps = GpsClock::new(MBIT);
        gps.set_rate(1, 250_000.0);
        gps.set_rate(2, 750_000.0);
        // Flow 1 gets one 1000-bit packet (virtual finish 4 ms), flow 2 gets
        // three (virtual finish 4 ms as well: 3*1000/750k).
        gps.stamp(1, 1000, SimTime::ZERO);
        gps.stamp(2, 1000, SimTime::ZERO);
        gps.stamp(2, 1000, SimTime::ZERO);
        gps.stamp(2, 1000, SimTime::ZERO);
        // Both flows are active; total active rate = link rate, slope 1.
        // Everything finishes at virtual time 4 ms = real 4 ms.
        gps.advance(SimTime::from_millis(4));
        assert!((gps.virtual_time() - 0.004).abs() < 1e-9);
        assert!(!gps.busy());
    }

    #[test]
    fn idle_period_resumes_from_current_virtual_time() {
        let mut gps = GpsClock::new(MBIT);
        gps.set_rate(1, MBIT);
        let f1 = gps.stamp(1, 1000, SimTime::ZERO);
        assert!((f1 - 0.001).abs() < 1e-12);
        // Long idle gap; a new packet starts from V (not from the stale
        // last_finish) and V has stopped at 1 ms.
        let f2 = gps.stamp(1, 1000, SimTime::from_secs(5));
        assert!((f2 - 0.002).abs() < 1e-12);
    }

    #[test]
    fn stamp_respects_backlog_ordering() {
        let mut gps = GpsClock::new(MBIT);
        gps.set_rate(1, 100_000.0);
        gps.set_rate(2, 900_000.0);
        let f_slow = gps.stamp(1, 1000, SimTime::ZERO);
        let f_fast = gps.stamp(2, 1000, SimTime::ZERO);
        // The fast flow's packet finishes earlier in the fluid system.
        assert!(f_fast < f_slow);
    }

    #[test]
    #[should_panic]
    fn stamping_unregistered_flow_panics() {
        let mut gps = GpsClock::new(MBIT);
        let _ = gps.stamp(3, 1000, SimTime::ZERO);
    }

    #[test]
    #[should_panic]
    fn zero_link_rate_rejected() {
        let _ = GpsClock::new(0.0);
    }

    #[test]
    fn total_rate_and_accessors() {
        let mut gps = GpsClock::new(MBIT);
        gps.set_rate(1, 100_000.0);
        gps.set_rate(2, 200_000.0);
        assert_eq!(gps.total_rate(), 300_000.0);
        assert_eq!(gps.rate(1), Some(100_000.0));
        assert_eq!(gps.rate(9), None);
        assert_eq!(gps.link_rate_bps(), MBIT);
        gps.set_rate(1, 150_000.0);
        assert_eq!(gps.rate(1), Some(150_000.0));
    }

    #[test]
    fn reset_clears_backlog() {
        let mut gps = GpsClock::new(MBIT);
        gps.set_rate(1, MBIT);
        gps.stamp(1, 1000, SimTime::ZERO);
        assert!(gps.busy());
        gps.reset();
        assert!(!gps.busy());
        assert_eq!(gps.virtual_time(), 0.0);
        assert_eq!(gps.rate(1), Some(MBIT));
    }
}
