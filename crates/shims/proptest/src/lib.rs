//! Offline stand-in for the `proptest` crate.
//!
//! This workspace must build without network access, so the subset of the
//! proptest API the ISPN crates use is re-implemented here on top of a tiny
//! deterministic generator:
//!
//! * the [`proptest!`] macro (named-argument `pat in strategy` form),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * range strategies over the built-in numeric types,
//! * [`any`] for unconstrained values,
//! * [`collection::vec`] and tuple strategies.
//!
//! Unlike the real crate there is no shrinking: each test runs a fixed
//! number of deterministic cases (see [`CASES`]) and panics on the first
//! failing input, printing the case number.  That keeps the workspace's
//! property tests meaningful (they still explore hundreds of random inputs
//! per property, reproducibly) without the external dependency.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Number of random cases each property runs.
pub const CASES: u32 = 256;

/// The deterministic generator behind every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; the slight bias is irrelevant for test inputs.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator, mirroring proptest's `Strategy` at the level the
/// workspace uses it (sampling only, no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_unit()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        // The macro reuses the type parameters as binding names.
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! { (A, B) (A, B, C) (A, B, C, D) }

/// Types with a full-domain default strategy (proptest's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only — the real crate's any::<f64>() includes NaN
        // and infinities, but every use in this workspace wants ordinary
        // magnitudes.
        (rng.next_unit() - 0.5) * 2e12
    }
}

/// The character pool [`Arbitrary`] strings draw from: deliberately
/// hostile for serialization code — JSON-significant punctuation, control
/// characters, whitespace, and multi-byte non-ASCII next to plain text.
const HOSTILE_CHARS: &[char] = &[
    'a',
    'b',
    'z',
    'A',
    'Z',
    '0',
    '9',
    ' ',
    '_',
    '-',
    '.',
    ',',
    ':',
    ';',
    '=',
    '+',
    '/',
    '<',
    '>',
    '[',
    ']',
    '{',
    '}',
    '(',
    ')',
    '"',
    '\'',
    '\\',
    '\n',
    '\r',
    '\t',
    '\u{0}',
    '\u{1}',
    '\u{b}',
    '\u{1f}',
    '\u{7f}',
    'é',
    'ß',
    'Ω',
    '中',
    'か',
    '🦀',
    '\u{2028}',
    '\u{2029}',
    '\u{e000}',
    '\u{10ffff}',
];

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        HOSTILE_CHARS[rng.below(HOSTILE_CHARS.len() as u64) as usize]
    }
}

impl Arbitrary for String {
    /// Strings of length 0–23 over [`HOSTILE_CHARS`] — short enough to
    /// keep property runs fast, nasty enough to break naive escaping.
    fn arbitrary(rng: &mut TestRng) -> String {
        let len = rng.below(24) as usize;
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector whose length is uniform in `len` and whose elements come
    /// from `element` (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a test module needs in scope.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Assert a property of the current case (panics with the case's inputs
/// already printed by [`proptest!`] on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Define property tests: each `fn name(pat in strategy, …) { body }` runs
/// the body for [`CASES`] deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                // Per-test seed derived from the test's name so distinct
                // properties explore distinct streams, reproducibly.
                let mut __seed = 0xC5C5_1992_5160_0001u64;
                for b in stringify!($name).bytes() {
                    __seed = __seed.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
                }
                let mut __rng = $crate::TestRng::new(__seed);
                for __case in 0..$crate::CASES {
                    let ($($arg,)+) = ($($crate::Strategy::sample(&($strat), &mut __rng),)+);
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -5.0f64..5.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5.0..5.0).contains(&y));
        }

        #[test]
        fn vec_lengths_in_range(xs in crate::collection::vec(0u64..10, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_any(pair in (0u8..4, 1usize..3), seed in any::<u64>()) {
            prop_assert!(pair.0 < 4 && pair.1 >= 1);
            prop_assert_eq!(seed, seed);
        }
    }

    #[test]
    fn deterministic_stream() {
        let mut a = super::TestRng::new(1);
        let mut b = super::TestRng::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
