//! Offline stand-in for the `criterion` crate.
//!
//! The workspace's micro-benchmarks (`cargo bench`) use the familiar
//! criterion surface — [`Criterion::bench_function`], benchmark groups,
//! `criterion_group!` / `criterion_main!` — but this shim implements them
//! with a plain wall-clock harness so no external dependency is needed:
//! each benchmark is warmed up, then timed over enough iterations to fill a
//! short measurement window, and the mean per-iteration time is printed.
//! There are no statistical refinements (outlier rejection, regression
//! detection); for those, swap this path dependency for the real crate.

#![forbid(unsafe_code)]
// The shim exists to measure wall time: the clippy disallowed-methods
// backstop (clippy.toml) does not apply to a timing harness.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(500);
/// Warm-up time per benchmark.
const WARMUP_WINDOW: Duration = Duration::from_millis(100);

/// Timing loop handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly and record the mean per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up window has elapsed.
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_WINDOW {
            std::hint::black_box(routine());
        }
        // Measure.
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if start.elapsed() >= MEASURE_WINDOW {
                break;
            }
        }
        self.iterations = iters;
        self.elapsed = start.elapsed();
    }

    fn report(&self, name: &str) {
        if self.iterations == 0 {
            println!("{name:<40} (no measurement)");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iterations as f64;
        println!(
            "{name:<40} {:>12}/iter   ({} iterations)",
            format_time(per_iter),
            self.iterations
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// The top-level harness handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks (prefixes its name to each member).
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Set the requested sample count (accepted for API compatibility; the
    /// shim's fixed measurement window ignores it).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{name}", self.name));
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Re-export of `std::hint::black_box` under criterion's historical name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a group runner (compatible subset of
/// criterion's macro: the plain `criterion_group!(name, target…)` form).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(1 + 1));
        assert!(b.iterations > 0);
        assert!(b.elapsed >= MEASURE_WINDOW);
    }

    #[test]
    fn format_time_scales() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
