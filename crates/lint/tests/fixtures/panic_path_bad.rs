// Fixture: panics waiting to happen in a worker request path.

fn serve(frames: &[String]) -> String {
    let first = frames.first().unwrap();
    let parsed: u32 = first.parse().expect("bad frame");
    let echo = &frames[0];
    format!("{parsed}:{echo}")
}
