// Fixture: the same slot-table lookup, request-path safe.  Wire data is
// bounds-checked with `get` and the `NO_SLOT` sentinel turns into a
// per-point error frame instead of an out-of-bounds panic.

const NO_SLOT: u32 = u32::MAX;

struct Lane {
    flow: u32,
    pending: usize,
}

fn lane_status(slot_of: &[u32], lanes: &[Lane], wire_flow: usize) -> Result<String, String> {
    let slot = slot_of
        .get(wire_flow)
        .copied()
        .filter(|&s| s != NO_SLOT)
        .ok_or_else(|| format!("unknown flow {wire_flow}"))?;
    let lane = lanes
        .get(slot as usize)
        .ok_or_else(|| format!("slot {slot} out of range"))?;
    Ok(format!("{}:{}", lane.flow, lane.pending))
}
