// Fixture: every suppression says why.

// Kept for protocol documentation; referenced from README.
#[allow(dead_code)]
fn unused() {}

fn trailing() {
    #[allow(unused_variables)] // bound for symmetry with the v2 frame layout
    let reserved = 0u8;
}
