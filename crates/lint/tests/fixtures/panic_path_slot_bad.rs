// Fixture: slot-indexed flow tables inside a worker request path.  The
// hot-path pattern (a dense `slot_of` map from flow id to lane index) is
// fine in the engine, but a request handler indexing it with data off the
// wire can panic the worker on a malformed frame.

const NO_SLOT: u32 = u32::MAX;

struct Lane {
    flow: u32,
    pending: usize,
}

fn lane_status(slot_of: &[u32], lanes: &[Lane], wire_flow: usize) -> String {
    let slot = slot_of[wire_flow];
    let lane = &lanes[slot as usize];
    format!("{}:{}", lane.flow, lane.pending)
}
