// Fixture: `unsafe` with the invariant stated right above it.

fn peek(bytes: &[u8]) -> u8 {
    assert!(!bytes.is_empty());
    // SAFETY: the assert above guarantees at least one byte in bounds.
    unsafe { *bytes.as_ptr() }
}

fn trailing_form(bytes: &[u8; 4]) -> u8 {
    unsafe { *bytes.as_ptr().add(3) } // SAFETY: fixed-size array, index 3 < 4
}
