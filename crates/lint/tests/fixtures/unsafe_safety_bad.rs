// Fixture: undocumented `unsafe`.

fn peek(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() }
}
