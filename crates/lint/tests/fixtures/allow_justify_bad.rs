// Fixture: lint suppressions with no stated justification.
// (The blank lines below matter: a comment two or more lines above an
// attribute does not count as its justification.)

#[allow(dead_code)]
fn unused() {}

#[allow(clippy::disallowed_methods)]
fn silenced() {}
