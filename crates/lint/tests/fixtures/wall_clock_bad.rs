// Fixture: sim-visible wall-clock reads, all of which must be flagged.

fn drain_deadline() -> bool {
    let started = std::time::Instant::now();
    started.elapsed().as_secs() > 1
}

fn stamp() -> u64 {
    let t = std::time::SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH).unwrap().as_secs()
}

fn imported() {
    use std::time::Instant;
    let _ = Instant::now();
}
