// Fixture: per-point error frames instead of panics, plus one waived
// invariant site.

fn serve(frames: &[String]) -> Result<String, String> {
    let first = frames.first().ok_or("empty request")?;
    let parsed: u32 = first.parse().map_err(|e| format!("bad frame: {e}"))?;
    Ok(format!("{parsed}"))
}

fn supervised(slot: &mut Option<u32>) -> u32 {
    *slot = Some(1);
    // ispn-lint: allow(panic-path) -- the line above just installed Some
    slot.as_mut().unwrap().wrapping_add(0)
}
