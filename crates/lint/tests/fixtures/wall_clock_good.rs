// Fixture: clean wall-clock usage — waived telemetry, test-gated code, and
// strings/comments that merely mention the forbidden calls.

fn waived_telemetry() {
    // ispn-lint: allow(wall-clock) -- events/sec telemetry, never reaches report bytes
    let started = std::time::Instant::now();
    let _ = started.elapsed();
}

fn trailing_form() {
    let t = std::time::Instant::now(); // ispn-lint: allow(wall-clock) -- pacing only
    let _ = t;
}

fn just_words() {
    // A comment saying Instant::now() is not a call.
    let s = "std::time::Instant::now()";
    let _ = s;
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let _ = std::time::Instant::now();
    }
}
