// Fixture: randomized-hasher collections in sim-visible code.

use std::collections::HashMap;
use std::collections::HashSet;

struct Table {
    by_flow: HashMap<u64, usize>,
}

fn census() -> HashSet<u64> {
    let mut seen = std::collections::HashSet::new();
    seen.insert(7u64);
    seen
}
