// Fixture: the sanctioned alternatives — ordered maps, plus hasher maps in
// test-gated code where iteration order cannot reach sim output.

use std::collections::{BTreeMap, BTreeSet};

struct Table {
    by_flow: BTreeMap<u64, usize>,
}

fn census() -> BTreeSet<u64> {
    let mut seen = BTreeSet::new();
    seen.insert(7u64);
    seen
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_sets_in_tests_are_fine() {
        let mut s = std::collections::HashSet::new();
        s.insert(1);
        assert!(s.contains(&1));
    }
}
