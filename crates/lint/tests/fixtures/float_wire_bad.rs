// Fixture: lossy float formatting in wire-adjacent code.

fn encode(v: f64) -> String {
    format!("{:.6}", v)
}

fn scientific(v: f64) -> String {
    format!("{:e}", v)
}
