// Fixture: the exact round-trip codec, plus a waived human-facing message.

fn encode(v: f64) -> String {
    format!("{:?}", v)
}

fn decode(s: &str) -> f64 {
    s.parse::<f64>().unwrap_or(0.0)
}

fn poison_message(v: f64) -> String {
    format!(
        // ispn-lint: allow(float-wire) -- human-facing message, not a round-tripped value
        "point failed near load {:.3}",
        v
    )
}
