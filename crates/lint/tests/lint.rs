//! End-to-end tests for `ispn-lint`: the fixture corpus (one known-bad and
//! one known-good source per rule), waiver round-trips, the baseline drift
//! guard, a seeded-violation run over a temp workspace tree, and a
//! self-check that the real workspace is clean under the committed baseline.

use std::path::{Path, PathBuf};

use ispn_lint::rules::Finding;
use ispn_lint::waiver::BaselineEntry;
use ispn_lint::{analyze_source, run_files, run_workspace};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path:?}: {e}"))
}

/// Lint fixture `name` as if it lived at workspace-relative `path` (rule
/// scoping is path-based) and return the unwaived findings.
fn lint_fixture(name: &str, path: &str) -> Vec<Finding> {
    analyze_source(path, &fixture(name)).findings
}

fn rules_hit(findings: &[Finding]) -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = findings.iter().map(|f| f.rule).collect();
    ids.dedup();
    ids
}

// ---------------------------------------------------------------- fixtures

#[test]
fn wall_clock_fixture_pair() {
    let bad = lint_fixture("wall_clock_bad.rs", "crates/sim/src/fixture.rs");
    assert_eq!(rules_hit(&bad), ["wall-clock"]);
    assert_eq!(bad.len(), 3, "Instant::now x2 + SystemTime::now: {bad:?}");
    assert!(bad.iter().all(|f| f.line > 0 && f.col > 0));

    let good = lint_fixture("wall_clock_good.rs", "crates/sim/src/fixture.rs");
    assert!(good.is_empty(), "{good:?}");

    // The same bad source is clean inside the scope-exempt timing harness.
    let bench = lint_fixture("wall_clock_bad.rs", "crates/bench/src/fixture.rs");
    assert!(bench.is_empty(), "{bench:?}");
}

#[test]
fn hash_order_fixture_pair() {
    let bad = lint_fixture("hash_order_bad.rs", "crates/net/src/fixture.rs");
    assert_eq!(rules_hit(&bad), ["hash-order"]);
    assert!(bad.len() >= 3, "use lines + field + ctor: {bad:?}");

    let good = lint_fixture("hash_order_good.rs", "crates/net/src/fixture.rs");
    assert!(good.is_empty(), "{good:?}");

    // Outside sim-visible crates the rule does not apply at all.
    let tool = lint_fixture("hash_order_bad.rs", "crates/lint/src/fixture.rs");
    assert!(tool.is_empty(), "{tool:?}");
}

#[test]
fn float_wire_fixture_pair() {
    let wire = "crates/scenario/src/sweep/fixture.rs";
    let bad = lint_fixture("float_wire_bad.rs", wire);
    assert_eq!(rules_hit(&bad), ["float-wire"]);
    assert_eq!(bad.len(), 2, "{{:.6}} and {{:e}}: {bad:?}");

    let good = lint_fixture("float_wire_good.rs", wire);
    assert!(good.is_empty(), "{good:?}");

    // The rule is scoped to the protocol directory only.
    let elsewhere = lint_fixture("float_wire_bad.rs", "crates/stats/src/fixture.rs");
    assert!(elsewhere.is_empty(), "{elsewhere:?}");
}

#[test]
fn unsafe_safety_fixture_pair() {
    let bad = lint_fixture("unsafe_safety_bad.rs", "crates/core/src/fixture.rs");
    assert_eq!(rules_hit(&bad), ["unsafe-safety"]);

    let good = lint_fixture("unsafe_safety_good.rs", "crates/core/src/fixture.rs");
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn allow_justify_fixture_pair() {
    let bad = lint_fixture("allow_justify_bad.rs", "crates/core/src/fixture.rs");
    assert_eq!(rules_hit(&bad), ["allow-justify"]);
    assert_eq!(bad.len(), 2, "{bad:?}");

    let good = lint_fixture("allow_justify_good.rs", "crates/core/src/fixture.rs");
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn panic_path_fixture_pair() {
    let worker = "crates/scenario/src/sweep/worker.rs";
    let bad = lint_fixture("panic_path_bad.rs", worker);
    assert_eq!(rules_hit(&bad), ["panic-path"]);
    assert_eq!(bad.len(), 3, "unwrap + expect + indexing: {bad:?}");

    let good = lint_fixture("panic_path_good.rs", worker);
    assert!(good.is_empty(), "{good:?}");

    // Request-path hygiene is scoped to the three protocol files.
    let elsewhere = lint_fixture("panic_path_bad.rs", "crates/scenario/src/sweep/fixture.rs");
    assert!(elsewhere.is_empty(), "{elsewhere:?}");
}

/// The slot-table idiom the hot-path refactor introduced (dense
/// `slot_of` index vectors into lane tables): direct indexing with wire
/// data must still be flagged inside worker request paths, and the
/// `get`-plus-sentinel form must pass clean.
#[test]
fn panic_path_slot_table_fixture_pair() {
    let worker = "crates/scenario/src/sweep/worker.rs";
    let bad = lint_fixture("panic_path_slot_bad.rs", worker);
    assert_eq!(rules_hit(&bad), ["panic-path"]);
    assert_eq!(bad.len(), 2, "slot_of[…] + lanes[…]: {bad:?}");

    let good = lint_fixture("panic_path_slot_good.rs", worker);
    assert!(good.is_empty(), "{good:?}");

    // Engine crates may keep the direct-indexed hot path.
    let engine = lint_fixture("panic_path_slot_bad.rs", "crates/sched/src/fixture.rs");
    assert!(engine.is_empty(), "{engine:?}");
}

// ----------------------------------------------------------------- waivers

#[test]
fn waiver_suppresses_only_named_rule_on_target_line() {
    let src = "\
// ispn-lint: allow(wall-clock) -- telemetry fixture\n\
let t = std::time::Instant::now();\n\
let u = std::time::Instant::now();\n";
    let out = analyze_source("crates/sim/src/fixture.rs", src);
    assert_eq!(out.waived, 1);
    assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
    assert_eq!(out.findings[0].line, 3, "second read is not covered");
}

#[test]
fn malformed_and_stale_waivers_are_findings() {
    let missing_reason = "// ispn-lint: allow(wall-clock)\nlet x = 1;\n";
    let out = analyze_source("crates/sim/src/fixture.rs", missing_reason);
    assert_eq!(rules_hit(&out.findings), ["bad-waiver"]);

    let stale = "// ispn-lint: allow(wall-clock) -- excuses nothing\nlet x = 1;\n";
    let out = analyze_source("crates/sim/src/fixture.rs", stale);
    assert_eq!(rules_hit(&out.findings), ["stale-waiver"]);
    assert!(out.findings[0].message.contains("suppresses nothing"));
}

#[test]
fn waiver_round_trips_through_render_text() {
    // A waiver written in the documented syntax parses back to the same
    // rule set and reason, and survives target resolution through an
    // attribute.
    let src = "\
// ispn-lint: allow(wall-clock, hash-order) -- dual-purpose telemetry cache\n\
#[allow(dead_code)] // justified: fixture\n\
let m: std::collections::HashMap<u8, std::time::Instant> = Default::default();\n";
    let out = analyze_source("crates/sim/src/fixture.rs", src);
    assert!(
        out.findings.is_empty(),
        "waiver failed to round-trip: {:?}",
        out.findings
    );
    assert_eq!(out.waived, 1, "HashMap type mention waived via hash-order");
}

// ---------------------------------------------------------- baseline drift

#[test]
fn baseline_entry_suppresses_exact_site_and_goes_stale_on_drift() {
    let root = tempdir("ispn-lint-drift");
    let file = root.join("crates/net/src/table.rs");
    std::fs::create_dir_all(file.parent().unwrap()).unwrap();
    std::fs::write(
        &file,
        "use std::collections::HashMap;\npub type T = HashMap<u8, u8>;\n",
    )
    .unwrap();
    let files = vec![PathBuf::from("crates/net/src/table.rs")];

    let entry = |line: u32| BaselineEntry {
        rule: "hash-order".to_string(),
        path: "crates/net/src/table.rs".to_string(),
        line,
        reason: "grandfathered for the drift test".to_string(),
        src_line: 5,
    };

    // Exact match on both findings' lines: clean, both baselined.
    let baseline = vec![entry(1), entry(2)];
    let report = run_files(&root, &files, &baseline).unwrap();
    assert!(report.is_clean(), "{:?}", report.findings);
    assert_eq!(report.baselined, 2);

    // Drift: the entry's line no longer matches → the original finding
    // comes back AND the stale entry is itself a finding.
    let baseline = vec![entry(1), entry(99)];
    let report = run_files(&root, &files, &baseline).unwrap();
    let ids = rules_hit(&report.findings);
    assert!(ids.contains(&"hash-order"), "{ids:?}");
    assert!(ids.contains(&"stale-baseline"), "{ids:?}");
    let stale = report
        .findings
        .iter()
        .find(|f| f.rule == "stale-baseline")
        .unwrap();
    assert_eq!(stale.path, "lint-allow.toml");
    assert_eq!(stale.line, 5, "diagnostic points at the baseline entry");

    std::fs::remove_dir_all(&root).ok();
}

// ------------------------------------------------------- seeded violation

#[test]
fn seeded_violation_fails_with_rule_file_and_line() {
    let root = tempdir("ispn-lint-seeded");
    let file = root.join("crates/sched/src/seeded.rs");
    std::fs::create_dir_all(file.parent().unwrap()).unwrap();
    std::fs::write(
        &file,
        "pub fn tick() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
    )
    .unwrap();

    let report = run_workspace(&root).unwrap();
    assert!(!report.is_clean());
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert_eq!(f.rule, "wall-clock");
    assert_eq!(f.path, "crates/sched/src/seeded.rs");
    assert_eq!(f.line, 2);
    assert_eq!(f.snippet, "std::time::Instant::now()");

    // The rendered diagnostic carries all three coordinates.
    let text = ispn_lint::render_text(&report);
    assert!(text.contains("crates/sched/src/seeded.rs:2:"), "{text}");
    assert!(text.contains("[wall-clock]"), "{text}");

    // And the JSON form is machine-readable with the same fields.
    let json = ispn_lint::render_json(&report);
    assert!(json.contains("\"rule\":\"wall-clock\""), "{json}");
    assert!(json.contains("\"line\":2"), "{json}");

    std::fs::remove_dir_all(&root).ok();
}

// ------------------------------------------------------ workspace self-test

/// The real workspace root (two levels above this crate's manifest).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

#[test]
fn real_workspace_is_clean_under_committed_baseline() {
    let report = run_workspace(&workspace_root()).unwrap();
    assert!(
        report.is_clean(),
        "the committed tree must lint clean:\n{}",
        ispn_lint::render_text(&report)
    );
    assert!(
        report.files > 50,
        "walk found the workspace: {}",
        report.files
    );
    assert!(
        report.waived > 0,
        "the telemetry waivers exist and still anchor"
    );
}

#[test]
fn lint_output_is_deterministic() {
    let root = workspace_root();
    let a = ispn_lint::render_json(&run_workspace(&root).unwrap());
    let b = ispn_lint::render_json(&run_workspace(&root).unwrap());
    assert_eq!(a, b);
}

// ------------------------------------------------------------------- util

fn tempdir(tag: &str) -> PathBuf {
    // Keyed by PID only — no wall-clock — so reruns reuse and overwrite.
    let dir = std::env::temp_dir().join(format!("{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}
