//! A minimal hand-rolled Rust lexer — just enough structure for the lint
//! rules: identifiers, punctuation, literals and comments, each tagged with
//! its line and column.
//!
//! This is deliberately **not** a full Rust parser (the workspace builds
//! offline, so `syn` is not available).  The rules only need to see token
//! *sequences* (`Instant :: now`, `.` `unwrap` `(`) with strings and
//! comments correctly skipped, so the lexer's one hard job is to never
//! mistake literal or comment content for code.  It therefore handles the
//! full literal syntax: escapes, multi-line strings, raw strings with any
//! number of `#`s, byte/C-string prefixes, char-vs-lifetime after `'`, and
//! nested block comments.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unsafe`, `HashMap`, `now`).
    Ident,
    /// A single punctuation character (`:`, `[`, `.`); multi-character
    /// operators appear as consecutive tokens.
    Punct,
    /// A string literal; [`Token::text`] holds the *content* (no quotes),
    /// raw and escaped forms undecoded.
    Str,
    /// A character or byte literal (content, no quotes).
    Char,
    /// A numeric literal.
    Num,
    /// A lifetime (`'a`, `'static`), without the leading `'`.
    Lifetime,
}

/// One code token (comments are collected separately in [`LexFile`]).
#[derive(Debug, Clone)]
pub struct Token {
    /// The token kind.
    pub kind: TokKind,
    /// The token text (see [`TokKind`] for what it holds per kind).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

impl Token {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// One comment, with the comment markers stripped.
#[derive(Debug, Clone)]
pub struct Comment {
    /// The comment text without `//`, `///`, `//!` or `/* */` delimiters.
    pub text: String,
    /// 1-based line where the comment starts.
    pub line: u32,
    /// 1-based line where the comment ends (block comments may span lines).
    pub end_line: u32,
    /// 1-based column of the comment's opening delimiter.
    pub col: u32,
}

/// The lexed form of one source file: code tokens and comments, in order.
#[derive(Debug, Default)]
pub struct LexFile {
    /// Code tokens, in source order.
    pub tokens: Vec<Token>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
    out: LexFile,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Consume one character, tracking line/column.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn line_comment(&mut self) {
        let (line, col) = (self.line, self.col);
        self.bump();
        self.bump();
        // Doc-comment markers (`///`, `//!`) are delimiter, not text.
        while matches!(self.peek(0), Some('/' | '!')) {
            self.bump();
        }
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            text: text.trim().to_string(),
            line,
            end_line: line,
            col,
        });
    }

    fn block_comment(&mut self) {
        let (line, col) = (self.line, self.col);
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                    text.push_str("/*");
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                    if depth > 0 {
                        text.push_str("*/");
                    }
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.out.comments.push(Comment {
            text: text.trim().to_string(),
            line,
            end_line: self.line,
            col,
        });
    }

    /// Lex a `"…"` string body (opening quote not yet consumed); escapes
    /// are kept verbatim in the content, and the string may span lines.
    fn quoted_string(&mut self, line: u32, col: u32) {
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(c);
                self.bump();
                if let Some(e) = self.bump() {
                    text.push(e);
                }
                continue;
            }
            if c == '"' {
                self.bump();
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Str, text, line, col);
    }

    /// Lex a raw string at `#…"` (prefix `r`/`br`/`cr` already consumed).
    fn raw_string(&mut self, line: u32, col: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != Some('"') {
            // `r#ident` raw identifier: re-lex as an identifier.
            let mut text = String::new();
            while let Some(c) = self.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                self.bump();
            }
            self.push(TokKind::Ident, text, line, col);
            return;
        }
        self.bump();
        let mut text = String::new();
        'scan: while let Some(c) = self.peek(0) {
            if c == '"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..=hashes {
                        self.bump();
                    }
                    break 'scan;
                }
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Str, text, line, col);
    }

    /// Lex what follows a `'`: a char literal or a lifetime.
    fn char_or_lifetime(&mut self) {
        let (line, col) = (self.line, self.col);
        self.bump();
        match (self.peek(0), self.peek(1)) {
            (Some('\\'), _) => {
                // Escaped char literal: consume to the closing quote.
                let mut text = String::new();
                while let Some(c) = self.peek(0) {
                    if c == '\'' {
                        self.bump();
                        break;
                    }
                    text.push(c);
                    self.bump();
                }
                self.push(TokKind::Char, text, line, col);
            }
            (Some(c), Some('\'')) => {
                self.bump();
                self.bump();
                self.push(TokKind::Char, c.to_string(), line, col);
            }
            _ => {
                let mut text = String::new();
                while let Some(c) = self.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(c);
                    self.bump();
                }
                self.push(TokKind::Lifetime, text, line, col);
            }
        }
    }

    fn number(&mut self) {
        let (line, col) = (self.line, self.col);
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the number; `0..10` does not.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, text, line, col);
    }

    fn ident(&mut self) {
        let (line, col) = (self.line, self.col);
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        // Literal prefixes: `r"…"`, `b"…"`, `br#"…"#`, `c"…"`, `b'x'`.
        match text.as_str() {
            "r" | "br" | "cr" if matches!(self.peek(0), Some('"' | '#')) => {
                self.raw_string(line, col);
                return;
            }
            "b" | "c" if self.peek(0) == Some('"') => {
                self.quoted_string(line, col);
                return;
            }
            "b" if self.peek(0) == Some('\'') => {
                self.char_or_lifetime();
                return;
            }
            _ => {}
        }
        self.push(TokKind::Ident, text, line, col);
    }
}

/// Lex `src` into tokens and comments.
pub fn tokenize(src: &str) -> LexFile {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
        out: LexFile::default(),
    };
    while let Some(c) = lx.peek(0) {
        match c {
            '/' if lx.peek(1) == Some('/') => lx.line_comment(),
            '/' if lx.peek(1) == Some('*') => lx.block_comment(),
            '"' => {
                let (line, col) = (lx.line, lx.col);
                lx.quoted_string(line, col);
            }
            '\'' => lx.char_or_lifetime(),
            _ if c.is_whitespace() => {
                lx.bump();
            }
            _ if c.is_ascii_digit() => lx.number(),
            _ if is_ident_start(c) => lx.ident(),
            _ => {
                let (line, col) = (lx.line, lx.col);
                lx.bump();
                lx.push(TokKind::Punct, c.to_string(), line, col);
            }
        }
    }
    lx.out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn code_inside_strings_is_not_tokenized() {
        let lex = tokenize(r#"let s = "Instant::now() /* not a comment */";"#);
        assert_eq!(idents(r#"let s = "Instant::now()";"#), ["let", "s"]);
        assert_eq!(lex.comments.len(), 0);
        assert_eq!(
            lex.tokens.iter().filter(|t| t.kind == TokKind::Str).count(),
            1
        );
    }

    #[test]
    fn raw_strings_with_hashes_do_not_end_early() {
        let lex = tokenize(r###"let s = r#"a "quoted" HashMap"#; let t = 1;"###);
        assert!(lex.tokens.iter().all(|t| !t.is_ident("HashMap")));
        assert!(lex.tokens.iter().any(|t| t.is_ident("t")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lex = tokenize("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = lex
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lex
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "x"));
    }

    #[test]
    fn nested_block_comments_close_at_the_right_depth() {
        let lex = tokenize("/* outer /* inner */ still outer */ fn f() {}");
        assert_eq!(lex.comments.len(), 1);
        assert!(lex.tokens.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn multiline_strings_track_lines() {
        let lex = tokenize("let s = \"line one\nline two\";\nlet x = 1;");
        let x = lex.tokens.iter().find(|t| t.is_ident("x")).unwrap();
        assert_eq!(x.line, 3);
    }

    #[test]
    fn comments_strip_markers_and_record_spans() {
        let lex = tokenize("// SAFETY: fine\n/// doc\nfn f() {}\n/* a\nb */");
        assert_eq!(lex.comments[0].text, "SAFETY: fine");
        assert_eq!(lex.comments[1].text, "doc");
        assert_eq!(lex.comments[2].line, 4);
        assert_eq!(lex.comments[2].end_line, 5);
    }

    #[test]
    fn ranges_are_not_swallowed_by_number_lexing() {
        let lex = tokenize("for i in 0..10 { a[i]; }");
        assert!(lex
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "10"));
    }
}
