//! The rule registry: stable IDs, per-rule documentation, path scoping and
//! the token-level checkers.
//!
//! Every rule exists to protect one concrete invariant of this workspace's
//! byte-identity discipline (tables 1–3 goldens, the churn decision
//! sequence, serial vs `--workers` vs `--hosts` identity).  Rules are
//! heuristic token scans, not type-checked analyses — they over-approximate
//! on purpose and rely on the waiver mechanism
//! (see [`waiver`](crate::waiver)) for the sanctioned exceptions.

use crate::lexer::{LexFile, TokKind, Token};

/// A diagnostic produced by a rule (or by the waiver machinery itself).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule ID (see [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// Where a rule applies.
#[derive(Debug, Clone, Copy)]
pub struct Scope {
    /// Workspace-relative path prefixes the rule applies to; empty = all
    /// files.  An entry ending in `.rs` matches that exact file.
    pub include: &'static [&'static str],
    /// Path prefixes exempt from the rule (checked after `include`).
    pub exclude: &'static [&'static str],
    /// Skip `#[cfg(test)]`-gated items: test-only code cannot reach
    /// sim-visible output.
    pub skip_tests: bool,
}

/// One lint rule: a stable ID plus its rationale and scope.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable ID, used in waivers (`// ispn-lint: allow(<id>) -- reason`)
    /// and in `lint-allow.toml` entries.
    pub id: &'static str,
    /// One-line summary for diagnostics and `--rules`.
    pub summary: &'static str,
    /// Full rationale: the invariant the rule protects and the sanctioned
    /// alternatives.
    pub doc: &'static str,
    /// Where the rule applies.
    pub scope: Scope,
}

const ALL: Scope = Scope {
    include: &[],
    exclude: &[],
    skip_tests: false,
};

/// Sim-visible crates: anything here can feed scheduling order or report
/// bytes, so hasher-order nondeterminism is golden-breaking.
const SIM_VISIBLE: &[&str] = &[
    "crates/core/",
    "crates/sched/",
    "crates/net/",
    "crates/signal/",
    "crates/sim/",
    "crates/scenario/",
    "crates/traffic/",
    "crates/transport/",
    "crates/experiments/",
];

/// The rule registry.  IDs are stable: waivers and baseline entries refer
/// to them, so renaming one is a breaking change to every waiver.
pub const RULES: &[Rule] = &[
    Rule {
        id: "wall-clock",
        summary: "wall-clock read (`Instant::now`/`SystemTime::now`) outside a telemetry site",
        doc: "Simulation results must be a function of the scenario and its seeds alone. A \
              wall-clock read anywhere sim-visible makes output depend on host load and breaks \
              byte-identity across runs, workers and hosts. Simulated time comes from \
              `ispn_sim::SimTime`; wall-clock reads are legitimate only in telemetry (events/sec \
              measurement, progress pacing, round-trip overhead), and every such site carries an \
              inline waiver naming why its value never reaches a report body. The timing \
              harnesses (`crates/bench`, `crates/shims`) exist to measure wall time and are \
              exempt by scope.",
        scope: Scope {
            include: &[],
            exclude: &["crates/bench/", "crates/shims/"],
            skip_tests: true,
        },
    },
    Rule {
        id: "hash-order",
        summary: "std `HashMap`/`HashSet` in a sim-visible crate",
        doc: "`std::collections::HashMap`/`HashSet` iterate in `RandomState` order: different \
              every process, so any iteration that reaches scheduling decisions or report bytes \
              silently breaks replayability and serial-vs-distributed identity. In sim-visible \
              crates use `BTreeMap`/`BTreeSet`, or collect-and-sort (a sorted drain) before the \
              order can matter. Lookup-only maps are still flagged — the next edit may iterate; \
              convert or waive with the invariant that keeps iteration unreachable.",
        scope: Scope {
            include: SIM_VISIBLE,
            exclude: &[],
            skip_tests: true,
        },
    },
    Rule {
        id: "float-wire",
        summary: "lossy float formatting (`{:e}`, `{:.N}`) in wire-adjacent code",
        doc: "Distributed byte-identity hinges on `f64` crossing the worker protocol exactly: \
              values are encoded with `{:?}` (shortest round-trip representation) and decoded \
              with `str::parse::<f64>`. A `{:e}` or precision spec in wire-adjacent code is \
              either a lossy value encoding (a real bug) or a human-facing message (waive it, \
              naming which). Scope: `crates/scenario/src/sweep/` — the protocol files.",
        scope: Scope {
            include: &["crates/scenario/src/sweep/"],
            exclude: &[],
            skip_tests: true,
        },
    },
    Rule {
        id: "unsafe-safety",
        summary: "`unsafe` without an adjacent `// SAFETY:` comment",
        doc: "Every `unsafe` block, fn or impl must carry a `// SAFETY:` comment immediately \
              above (or trailing on the same line) stating the invariant that makes it sound. \
              Most crates forbid `unsafe_code` outright (enforced via the workspace lints \
              table); this rule polices the few places that genuinely need it.",
        scope: ALL,
    },
    Rule {
        id: "allow-justify",
        summary: "`#[allow(…)]` without a justification comment",
        doc: "Silencing a compiler or clippy lint is a determinism-relevant decision in this \
              workspace (the clippy `disallowed_methods`/`disallowed_types` backstop is how \
              wall-clock and hasher rules reach CI). Every `#[allow(…)]`/`#![allow(…)]` must \
              have a comment on the same line or directly above saying why the lint does not \
              apply.",
        scope: ALL,
    },
    Rule {
        id: "panic-path",
        summary: "bare `unwrap()`/`expect()`/indexing in a worker request path",
        doc: "A panic while serving or supervising sweep points must stay a per-point poison \
              (`SweepError` with the point's tags) and never abort the supervisor or the serve \
              loop. In `sweep::{worker,net,dist}` request-handling code, bare `unwrap()`, \
              `expect(…)` and `[…]` indexing are flagged: convert to per-point error frames, or \
              waive/baseline with the invariant that makes the panic unreachable. Scope: the \
              three protocol files; `catch_unwind` already fences the per-point closures.",
        scope: Scope {
            include: &[
                "crates/scenario/src/sweep/worker.rs",
                "crates/scenario/src/sweep/net.rs",
                "crates/scenario/src/sweep/dist.rs",
            ],
            exclude: &[],
            skip_tests: true,
        },
    },
    Rule {
        id: "bad-waiver",
        summary: "malformed waiver comment (missing rule list or `-- reason`)",
        doc: "A waiver must read `// ispn-lint: allow(<rule>[, <rule>…]) -- <reason>`. The \
              reason is not optional: an unexplained waiver is indistinguishable from a \
              rubber stamp. Emitted by the waiver parser; not itself waivable.",
        scope: ALL,
    },
    Rule {
        id: "stale-waiver",
        summary: "waiver that no longer suppresses any finding",
        doc: "An inline waiver whose target line has no finding for the named rule is dead \
              weight and hides drift (the code it excused moved or was fixed). Delete it. \
              Emitted by the waiver matcher; not itself waivable.",
        scope: ALL,
    },
    Rule {
        id: "stale-baseline",
        summary: "`lint-allow.toml` entry that matches no current finding",
        doc: "Baseline entries grandfather pre-lint sites by exact rule+file+line. When the \
              site moves or is fixed the entry goes stale and must be updated or removed \
              (`--update-baseline` rewrites the file from current findings). This is the \
              drift guard: a stale baseline fails `--deny` runs. Not itself waivable.",
        scope: ALL,
    },
];

/// IDs of the meta-rules emitted by the engine rather than a checker.
pub const META_RULES: &[&str] = &["bad-waiver", "stale-waiver", "stale-baseline"];

/// Look up a rule by ID.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// Does `rule` apply to the file at workspace-relative `path`?
pub fn applies(rule: &Rule, path: &str) -> bool {
    if rule.scope.exclude.iter().any(|p| path.starts_with(p)) {
        return false;
    }
    rule.scope.include.is_empty() || rule.scope.include.iter().any(|p| path.starts_with(p))
}

/// Line ranges of `#[cfg(test)]`-gated items (inclusive).
///
/// Token-level heuristic: after a `#[cfg(test)]` attribute (and any further
/// attributes), the gated item runs to the `}` matching its first `{`, or to
/// a `;` if one comes first.
pub fn test_regions(lex: &LexFile) -> Vec<(u32, u32)> {
    let toks = &lex.tokens;
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && matches!(toks.get(i + 1), Some(t) if t.is_punct('['))) {
            i += 1;
            continue;
        }
        let (attr_end, is_cfg_test) = scan_attr(toks, i);
        if !is_cfg_test {
            i = attr_end;
            continue;
        }
        let start_line = toks[i].line;
        let mut j = attr_end;
        // Skip any further attributes on the same item.
        while j < toks.len() && toks[j].is_punct('#') {
            let (e, _) = scan_attr(toks, j);
            j = e;
        }
        // Find the item's body (or its terminating `;`).
        let mut depth = 0usize;
        let mut end_line = start_line;
        while j < toks.len() {
            let t = &toks[j];
            if depth == 0 && t.is_punct(';') {
                end_line = t.line;
                break;
            }
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    end_line = t.line;
                    break;
                }
            }
            j += 1;
        }
        regions.push((start_line, end_line));
        i = j + 1;
    }
    regions
}

/// Scan the attribute starting at token `i` (which is `#`).  Returns the
/// index one past the closing `]` and whether the attribute is
/// `cfg(test)`-shaped (contains both `cfg` and `test`).
fn scan_attr(toks: &[Token], i: usize) -> (usize, bool) {
    let mut j = i + 1;
    if j < toks.len() && toks[j].is_punct('!') {
        j += 1;
    }
    if !(j < toks.len() && toks[j].is_punct('[')) {
        return (i + 1, false);
    }
    let mut depth = 0usize;
    let mut saw_cfg = false;
    let mut saw_test = false;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (j + 1, saw_cfg && saw_test);
            }
        } else if t.is_ident("cfg") {
            saw_cfg = true;
        } else if t.is_ident("test") {
            saw_test = true;
        }
        j += 1;
    }
    (toks.len(), false)
}

fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(s, e)| line >= s && line <= e)
}

/// A raw hit before waiver/baseline filtering: `(rule, line, col, message)`.
type Hit = (&'static str, u32, u32, String);

/// Run every applicable rule over one lexed file.
pub fn check_file(path: &str, lex: &LexFile) -> Vec<Hit> {
    let regions = test_regions(lex);
    let mut hits = Vec::new();
    for r in RULES {
        if META_RULES.contains(&r.id) || !applies(r, path) {
            continue;
        }
        let mut rule_hits = match r.id {
            "wall-clock" => check_wall_clock(lex),
            "hash-order" => check_hash_order(lex),
            "float-wire" => check_float_wire(lex),
            "unsafe-safety" => check_unsafe_safety(lex),
            "allow-justify" => check_allow_justify(lex),
            "panic-path" => check_panic_path(lex),
            _ => Vec::new(),
        };
        if r.scope.skip_tests {
            rule_hits.retain(|h| !in_regions(&regions, h.1));
        }
        hits.extend(rule_hits);
    }
    hits.sort_by_key(|h| (h.1, h.2, h.0));
    hits
}

fn check_wall_clock(lex: &LexFile) -> Vec<Hit> {
    let toks = &lex.tokens;
    let mut hits = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.is_ident("Instant") || t.is_ident("SystemTime")) {
            continue;
        }
        let path_now = matches!(toks.get(i + 1), Some(a) if a.is_punct(':'))
            && matches!(toks.get(i + 2), Some(b) if b.is_punct(':'))
            && matches!(toks.get(i + 3), Some(c) if c.is_ident("now"));
        if path_now {
            hits.push((
                "wall-clock",
                t.line,
                t.col,
                format!(
                    "`{}::now()` is a wall-clock read: sim-visible code must use simulated \
                     time (`SimTime`); waive only telemetry sites whose value never reaches \
                     a report body",
                    t.text
                ),
            ));
        }
    }
    hits
}

fn check_hash_order(lex: &LexFile) -> Vec<Hit> {
    let mut hits = Vec::new();
    for t in &lex.tokens {
        if t.kind != TokKind::Ident {
            continue;
        }
        let (name, fix) = match t.text.as_str() {
            "HashMap" => ("HashMap", "BTreeMap"),
            "HashSet" => ("HashSet", "BTreeSet"),
            _ => continue,
        };
        hits.push((
            "hash-order",
            t.line,
            t.col,
            format!(
                "std `{name}` iterates in per-process `RandomState` order — in a sim-visible \
                 crate that silently breaks byte-identity; use `{fix}` or a sorted drain"
            ),
        ));
    }
    hits
}

fn check_float_wire(lex: &LexFile) -> Vec<Hit> {
    let mut hits = Vec::new();
    for t in &lex.tokens {
        if t.kind != TokKind::Str {
            continue;
        }
        let lossy = ["{:e}", "{:E}", "{:."]
            .iter()
            .find(|pat| t.text.contains(**pat));
        if let Some(pat) = lossy {
            hits.push((
                "float-wire",
                t.line,
                t.col,
                format!(
                    "`{pat}` formatting in wire-adjacent code: floats cross the worker \
                     protocol only through the exact `{{:?}}` round-trip codec; waive \
                     human-facing supervision messages explicitly"
                ),
            ));
        }
    }
    hits
}

fn check_unsafe_safety(lex: &LexFile) -> Vec<Hit> {
    let mut hits = Vec::new();
    for t in &lex.tokens {
        if !t.is_ident("unsafe") {
            continue;
        }
        let documented = lex.comments.iter().any(|c| {
            c.text.contains("SAFETY:") && c.end_line <= t.line && t.line - c.end_line <= 1
        });
        if !documented {
            hits.push((
                "unsafe-safety",
                t.line,
                t.col,
                "`unsafe` without an adjacent `// SAFETY:` comment stating the invariant \
                 that makes it sound"
                    .to_string(),
            ));
        }
    }
    hits
}

fn check_allow_justify(lex: &LexFile) -> Vec<Hit> {
    let toks = &lex.tokens;
    let mut hits = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_punct('#') {
            continue;
        }
        let mut j = i + 1;
        if j < toks.len() && toks[j].is_punct('!') {
            j += 1;
        }
        let is_allow = matches!(toks.get(j), Some(b) if b.is_punct('['))
            && matches!(toks.get(j + 1), Some(a) if a.is_ident("allow"));
        if !is_allow {
            continue;
        }
        let line = toks[i].line;
        let justified = lex
            .comments
            .iter()
            .any(|c| c.end_line == line || c.end_line + 1 == line);
        if !justified {
            hits.push((
                "allow-justify",
                line,
                toks[i].col,
                "`#[allow(…)]` without a justification comment on the same line or \
                 directly above"
                    .to_string(),
            ));
        }
    }
    hits
}

fn check_panic_path(lex: &LexFile) -> Vec<Hit> {
    let toks = &lex.tokens;
    let mut hits = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        // `.unwrap(` / `.expect(`
        if t.is_punct('.') {
            if let (Some(name), Some(paren)) = (toks.get(i + 1), toks.get(i + 2)) {
                if (name.is_ident("unwrap") || name.is_ident("expect")) && paren.is_punct('(') {
                    hits.push((
                        "panic-path",
                        name.line,
                        name.col,
                        format!(
                            "bare `{}()` in a worker request path: a panic here must stay a \
                             per-point poison, never a supervisor abort — return a per-point \
                             error, or waive with the invariant that makes it unreachable",
                            name.text
                        ),
                    ));
                }
            }
            continue;
        }
        // `ident[` indexing (attribute brackets never follow an identifier).
        if t.kind == TokKind::Ident {
            if let Some(br) = toks.get(i + 1) {
                if br.is_punct('[') {
                    hits.push((
                        "panic-path",
                        br.line,
                        br.col,
                        format!(
                            "`{}[…]` indexing in a worker request path can panic: use `get` \
                             with a per-point error, or waive with the bound that holds",
                            t.text
                        ),
                    ));
                }
            }
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    #[test]
    fn registry_ids_are_unique_and_documented() {
        for (i, a) in RULES.iter().enumerate() {
            assert!(
                !a.doc.is_empty() && !a.summary.is_empty(),
                "{} undocumented",
                a.id
            );
            for b in &RULES[i + 1..] {
                assert_ne!(a.id, b.id);
            }
        }
    }

    #[test]
    fn cfg_test_regions_cover_the_module_body() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn f() { x.unwrap(); }\n}\n";
        let lex = tokenize(src);
        assert_eq!(test_regions(&lex), vec![(2, 5)]);
    }

    #[test]
    fn cfg_attributes_without_test_are_not_regions() {
        let lex = tokenize("#[cfg(unix)]\nfn f() { a.unwrap(); }\n");
        assert!(test_regions(&lex).is_empty());
    }

    #[test]
    fn scope_prefix_and_exact_file_matching() {
        let wall = rule("wall-clock").unwrap();
        assert!(applies(wall, "crates/net/src/network.rs"));
        assert!(!applies(wall, "crates/bench/src/snapshot.rs"));
        let panic = rule("panic-path").unwrap();
        assert!(applies(panic, "crates/scenario/src/sweep/dist.rs"));
        assert!(!applies(panic, "crates/scenario/src/sweep/wire.rs"));
        let fw = rule("float-wire").unwrap();
        assert!(applies(fw, "crates/scenario/src/sweep/wire.rs"));
        assert!(!applies(fw, "crates/scenario/src/sweep.rs"));
    }
}
