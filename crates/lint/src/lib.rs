//! `ispn-lint` — the workspace determinism & safety analyzer.
//!
//! This reproduction's guarantees — tables 1–3 bit-identity, the churn
//! decision-sequence golden, serial vs `--workers` vs `--hosts`
//! byte-identity — rest on coding conventions that no compiler checks: no
//! sim-visible wall-clock reads, no iteration over randomized-hasher maps,
//! floats crossing the wire only through the exact `{:?}` codec, panics in
//! worker paths staying per-point poisons.  `ispn-lint` turns those
//! conventions into a compile-time gate: a dependency-free static analyzer
//! (hand-rolled lexer, no `syn` — the workspace builds offline) that walks
//! every workspace `.rs` file, enforces the rule set in
//! [`rules::RULES`], and fails CI on any unwaived finding.
//!
//! Sanctioned exceptions are machine-checkable waivers (see [`waiver`]):
//! inline comments in the form `ispn-lint: allow(<rule>) -- <reason>` right
//! above (or trailing) the excused line, plus the committed
//! `lint-allow.toml` baseline for grandfathered sites.  Waivers without
//! reasons, waivers that no longer match a finding, and stale baseline
//! entries are themselves findings, so the gate only ever ratchets.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p ispn-lint                     # report findings
//! cargo run -p ispn-lint -- --deny           # CI gate: exit 1 on findings
//! cargo run -p ispn-lint -- --json           # machine-readable output
//! cargo run -p ispn-lint -- --rules          # print the rule catalog
//! cargo run -p ispn-lint -- --update-baseline
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod lexer;
pub mod rules;
pub mod waiver;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rules::Finding;
use waiver::BaselineEntry;

/// Directory names never descended into during the workspace walk.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github"];

/// Path prefixes excluded from the walk: the lint's own fixture corpus is
/// deliberately full of violations.
const SKIP_PREFIXES: &[&str] = &["crates/lint/tests/fixtures"];

/// The outcome of linting a workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Unwaived findings (including `bad-waiver`/`stale-waiver`/
    /// `stale-baseline` meta-findings), sorted by path, line, column.
    pub findings: Vec<Finding>,
    /// Findings suppressed by inline waivers.
    pub waived: usize,
    /// Findings suppressed by `lint-allow.toml` entries.
    pub baselined: usize,
    /// Number of `.rs` files scanned.
    pub files: usize,
}

impl Report {
    /// True when the workspace is clean under `--deny` semantics.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Analysis of a single file: findings after inline-waiver filtering, plus
/// the bookkeeping the engine needs for baseline matching.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Findings not suppressed by an inline waiver (baseline not yet
    /// applied), plus `bad-waiver`/`stale-waiver` meta-findings.
    pub findings: Vec<Finding>,
    /// Findings suppressed by inline waivers.
    pub waived: usize,
}

/// Lint one file's source as if it lived at workspace-relative `path`.
///
/// This is the per-file core of [`run_workspace`], exposed so the fixture
/// tests can feed known-bad sources under pretend paths (rule scoping is
/// path-based).
pub fn analyze_source(path: &str, src: &str) -> FileAnalysis {
    let lex = lexer::tokenize(src);
    let hits = rules::check_file(path, &lex);
    let waivers = waiver::collect(&lex);
    let lines: Vec<&str> = src.lines().collect();
    let snippet = |line: u32| {
        lines
            .get(line.saturating_sub(1) as usize)
            .map_or(String::new(), |l| l.trim().to_string())
    };

    let mut out = FileAnalysis::default();
    let mut used = vec![false; waivers.len()];
    for (rule, line, col, message) in hits {
        let covered = waivers.iter().enumerate().find(|(_, w)| {
            w.malformed.is_none() && w.target == line && w.rules.iter().any(|r| r == rule)
        });
        if let Some((i, _)) = covered {
            used[i] = true;
            out.waived += 1;
        } else {
            out.findings.push(Finding {
                rule,
                path: path.to_string(),
                line,
                col,
                message,
                snippet: snippet(line),
            });
        }
    }
    for (w, used) in waivers.iter().zip(&used) {
        if let Some(why) = &w.malformed {
            out.findings.push(Finding {
                rule: "bad-waiver",
                path: path.to_string(),
                line: w.line,
                col: w.col,
                message: format!("malformed waiver: {why}"),
                snippet: snippet(w.line),
            });
        } else if !used {
            out.findings.push(Finding {
                rule: "stale-waiver",
                path: path.to_string(),
                line: w.line,
                col: w.col,
                message: format!(
                    "waiver for `{}` suppresses nothing (target line {}): the code it \
                     excused moved or was fixed — delete or re-anchor it",
                    w.rules.join(", "),
                    w.target
                ),
                snippet: snippet(w.line),
            });
        }
    }
    out.findings
        .sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// Collect every workspace `.rs` file under `root`, workspace-relative and
/// sorted (the lint's own output must be deterministic).
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            let rel = rel_str(root, &path);
            if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        }
    }
    Ok(())
}

fn rel_str(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Load and parse `lint-allow.toml` at the workspace root.  A missing file
/// is an empty baseline; a malformed one is an error (the baseline is part
/// of the gate, it must always parse).
pub fn load_baseline(root: &Path) -> Result<Vec<BaselineEntry>, String> {
    let path = root.join("lint-allow.toml");
    if !path.exists() {
        return Ok(Vec::new());
    }
    let text = fs::read_to_string(&path).map_err(|e| format!("reading {path:?}: {e}"))?;
    waiver::parse_baseline(&text)
}

/// Lint the whole workspace rooted at `root`.
pub fn run_workspace(root: &Path) -> Result<Report, String> {
    let baseline = load_baseline(root)?;
    let files = workspace_files(root).map_err(|e| format!("walking {root:?}: {e}"))?;
    run_files(root, &files, &baseline)
}

/// Lint the given workspace-relative files against a baseline.
pub fn run_files(
    root: &Path,
    files: &[PathBuf],
    baseline: &[BaselineEntry],
) -> Result<Report, String> {
    // Index baseline entries by (path, rule, line) for exact matching.  A
    // site with several findings of one rule on one line (say, indexing and
    // an `expect` in one expression) is one entry; it covers them all.
    let mut by_site: BTreeMap<(&str, &str, u32), Vec<usize>> = BTreeMap::new();
    for (i, e) in baseline.iter().enumerate() {
        by_site
            .entry((e.path.as_str(), e.rule.as_str(), e.line))
            .or_default()
            .push(i);
    }
    let mut entry_used = vec![false; baseline.len()];

    let mut report = Report::default();
    for file in files {
        let rel = rel_str(Path::new(""), file);
        let src =
            fs::read_to_string(root.join(file)).map_err(|e| format!("reading {file:?}: {e}"))?;
        let analysis = analyze_source(&rel, &src);
        report.files += 1;
        report.waived += analysis.waived;
        for f in analysis.findings {
            if let Some(indices) = by_site.get(&(f.path.as_str(), f.rule, f.line)) {
                for &i in indices {
                    entry_used[i] = true;
                }
                report.baselined += 1;
            } else {
                report.findings.push(f);
            }
        }
    }
    for (e, used) in baseline.iter().zip(&entry_used) {
        if !used {
            report.findings.push(Finding {
                rule: "stale-baseline",
                path: "lint-allow.toml".to_string(),
                line: e.src_line,
                col: 1,
                message: format!(
                    "baseline entry `{}` at {}:{} matches no current finding: the site \
                     moved or was fixed — run `--update-baseline` and re-justify",
                    e.rule, e.path, e.line
                ),
                snippet: format!(
                    "rule = \"{}\", path = \"{}\", line = {}",
                    e.rule, e.path, e.line
                ),
            });
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(report)
}

/// Render findings as `path:line:col: [rule] message` diagnostics.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}:{}: [{}] {}\n",
            f.path, f.line, f.col, f.rule, f.message
        ));
        if !f.snippet.is_empty() {
            out.push_str(&format!("    |  {}\n", f.snippet));
        }
    }
    out.push_str(&format!(
        "ispn-lint: {} files scanned, {} finding{} ({} waived inline, {} baselined)\n",
        report.files,
        report.findings.len(),
        if report.findings.len() == 1 { "" } else { "s" },
        report.waived,
        report.baselined,
    ));
    out
}

/// Render the report as a single JSON document (`--json`).
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"files\":{},\"waived\":{},\"baselined\":{},\"findings\":[",
        report.files, report.waived, report.baselined
    ));
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\
             \"message\":\"{}\",\"snippet\":\"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            f.col,
            json_escape(&f.message),
            json_escape(&f.snippet),
        ));
    }
    out.push_str("]}");
    out
}

/// Render the rule catalog (`--rules`).
pub fn render_rules() -> String {
    let mut out = String::from("ispn-lint rule catalog\n");
    for r in rules::RULES {
        out.push_str(&format!("\n[{}] {}\n", r.id, r.summary));
        out.push_str(&format!("    {}\n", r.doc));
        if !r.scope.include.is_empty() {
            out.push_str(&format!("    scope: {}\n", r.scope.include.join(", ")));
        }
        if !r.scope.exclude.is_empty() {
            out.push_str(&format!("    exempt: {}\n", r.scope.exclude.join(", ")));
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
