//! The `ispn-lint` command-line driver.
//!
//! See the crate docs ([`ispn_lint`]) for what the tool enforces.  CI runs
//! `cargo run -p ispn-lint -- --deny` from the workspace root; the exit
//! code is the gate (`-D warnings` semantics: any unwaived finding, stale
//! waiver or stale baseline entry fails the run).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ispn_lint::waiver::BaselineEntry;

const USAGE: &str = "\
usage: ispn-lint [--deny] [--json] [--rules] [--update-baseline] [ROOT]

  --deny             exit non-zero on any finding (CI gate)
  --json             emit findings as one JSON document
  --rules            print the rule catalog and exit
  --update-baseline  rewrite lint-allow.toml from current findings
  ROOT               workspace root (default: nearest ancestor with a
                     [workspace] Cargo.toml)";

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut rules = false;
    let mut update_baseline = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--rules" => rules = true,
            "--update-baseline" => update_baseline = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') && root.is_none() => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("ispn-lint: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if rules {
        print!("{}", ispn_lint::render_rules());
        return ExitCode::SUCCESS;
    }
    let root = match root.map_or_else(find_workspace_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ispn-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if update_baseline {
        return match rewrite_baseline(&root) {
            Ok(n) => {
                eprintln!("ispn-lint: wrote lint-allow.toml with {n} entries");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("ispn-lint: {e}");
                ExitCode::from(2)
            }
        };
    }
    let report = match ispn_lint::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ispn-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", ispn_lint::render_json(&report));
    } else {
        print!("{}", ispn_lint::render_text(&report));
    }
    if deny && !report.is_clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Walk up from the current directory to the first `Cargo.toml` declaring a
/// `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("current dir: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| format!("reading {manifest:?}: {e}"))?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(
                "no [workspace] Cargo.toml found above the current directory; \
                        pass the workspace root explicitly"
                    .to_string(),
            );
        }
    }
}

/// Regenerate `lint-allow.toml` from the current unwaived findings,
/// preserving reasons of entries that still match exactly.
fn rewrite_baseline(root: &Path) -> Result<usize, String> {
    let old = ispn_lint::load_baseline(root)?;
    let files = ispn_lint::workspace_files(root).map_err(|e| format!("walk: {e}"))?;
    // Run against an empty baseline so every grandfathered site surfaces.
    let report = ispn_lint::run_files(root, &files, &[])?;
    let mut entries: Vec<BaselineEntry> = Vec::new();
    for f in &report.findings {
        if ispn_lint::rules::META_RULES.contains(&f.rule) {
            continue;
        }
        // One entry covers every same-rule finding on its line.
        if entries
            .iter()
            .any(|e| e.rule == f.rule && e.path == f.path && e.line == f.line)
        {
            continue;
        }
        let reason = old
            .iter()
            .find(|e| e.rule == f.rule && e.path == f.path && e.line == f.line)
            .map(|e| e.reason.clone())
            .unwrap_or_else(|| {
                "grandfathered pre-ispn-lint site; justify or fix before touching".to_string()
            });
        entries.push(BaselineEntry {
            rule: f.rule.to_string(),
            path: f.path.clone(),
            line: f.line,
            reason,
            src_line: 0,
        });
    }
    let text = ispn_lint::waiver::render_baseline(&entries);
    std::fs::write(root.join("lint-allow.toml"), text)
        .map_err(|e| format!("writing lint-allow.toml: {e}"))?;
    Ok(entries.len())
}
