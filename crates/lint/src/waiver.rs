//! Machine-checkable waivers: inline `// ispn-lint: allow(…) -- reason`
//! comments and the committed `lint-allow.toml` baseline.
//!
//! Both mechanisms are ratchets, not escape hatches: every waiver names the
//! rule it silences **and** carries a reason, a waiver that stops matching a
//! finding becomes a finding itself (`stale-waiver` / `stale-baseline`), and
//! the baseline exists only so the lint could land green over grandfathered
//! sites — new code waives inline or not at all.

use crate::lexer::{Comment, LexFile};

/// The comment marker that introduces an inline waiver.
pub const MARKER: &str = "ispn-lint:";

/// One parsed inline waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule IDs this waiver silences.
    pub rules: Vec<String>,
    /// The stated reason (always non-empty for a well-formed waiver).
    pub reason: String,
    /// Line of the waiver comment itself.
    pub line: u32,
    /// Column of the waiver comment.
    pub col: u32,
    /// The code line the waiver applies to (0 when nothing follows).
    pub target: u32,
    /// Parse error, when the comment carries the marker but not the syntax.
    pub malformed: Option<String>,
}

/// Extract waivers from a lexed file and resolve each to its target line.
///
/// A trailing waiver (code before it on the same line) targets that line;
/// a standalone waiver targets the next code line, looking **through**
/// attributes — so one comment can sit above a `#[allow(…)]` + statement
/// pair and waive a finding on the statement.
pub fn collect(lex: &LexFile) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for c in &lex.comments {
        // The marker must open the comment: prose *mentioning* the syntax
        // (like this sentence, or rustdoc examples) is not a waiver.
        let Some(body) = c.text.strip_prefix(MARKER) else {
            continue;
        };
        let mut w = parse_waiver(body, c);
        w.target = resolve_target(lex, c);
        waivers.push(w);
    }
    waivers
}

fn parse_waiver(body: &str, c: &Comment) -> Waiver {
    let mut w = Waiver {
        rules: Vec::new(),
        reason: String::new(),
        line: c.line,
        col: c.col,
        target: 0,
        malformed: None,
    };
    let body = body.trim();
    let Some(rest) = body.strip_prefix("allow(") else {
        w.malformed = Some("expected `allow(<rule>[, <rule>…]) -- <reason>`".to_string());
        return w;
    };
    let Some(close) = rest.find(')') else {
        w.malformed = Some("unterminated rule list: missing `)`".to_string());
        return w;
    };
    for id in rest[..close].split(',') {
        let id = id.trim();
        if id.is_empty() {
            continue;
        }
        if crate::rules::rule(id).is_none() {
            w.malformed = Some(format!("unknown rule `{id}`"));
            return w;
        }
        if crate::rules::META_RULES.contains(&id) {
            w.malformed = Some(format!("meta-rule `{id}` cannot be waived"));
            return w;
        }
        w.rules.push(id.to_string());
    }
    if w.rules.is_empty() {
        w.malformed = Some("empty rule list".to_string());
        return w;
    }
    let tail = rest[close + 1..].trim();
    let Some(reason) = tail.strip_prefix("--") else {
        w.malformed = Some("missing `-- <reason>`: every waiver carries a reason".to_string());
        return w;
    };
    let reason = reason.trim();
    if reason.is_empty() {
        w.malformed = Some("empty reason after `--`: every waiver carries a reason".to_string());
        return w;
    }
    w.reason = reason.to_string();
    w
}

/// The code line a waiver comment applies to.
fn resolve_target(lex: &LexFile, c: &Comment) -> u32 {
    // Trailing form: code earlier on the same line.
    if lex.tokens.iter().any(|t| t.line == c.line && t.col < c.col) {
        return c.line;
    }
    // Standalone form: the next code line, skipping whole attributes.
    let toks = &lex.tokens;
    let mut i = match toks.iter().position(|t| t.line > c.end_line) {
        Some(i) => i,
        None => return 0,
    };
    while i < toks.len() && toks[i].is_punct('#') {
        // Skip `#[…]` / `#![…]` to the matching `]`.
        let mut j = i + 1;
        if j < toks.len() && toks[j].is_punct('!') {
            j += 1;
        }
        let mut depth = 0usize;
        while j < toks.len() {
            if toks[j].is_punct('[') {
                depth += 1;
            } else if toks[j].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        i = j + 1;
    }
    toks.get(i).map_or(0, |t| t.line)
}

/// One `[[allow]]` entry from `lint-allow.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule ID being baselined.
    pub rule: String,
    /// Workspace-relative path of the grandfathered site.
    pub path: String,
    /// Exact 1-based line of the finding (drift-guarded).
    pub line: u32,
    /// Why the site is sanctioned.
    pub reason: String,
    /// Line of the entry inside `lint-allow.toml`, for diagnostics.
    pub src_line: u32,
}

/// Parse the `lint-allow.toml` baseline (a strict subset of TOML:
/// `[[allow]]` tables with `rule`/`path`/`line`/`reason` keys).
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut entries: Vec<BaselineEntry> = Vec::new();
    let mut current: Option<BaselineEntry> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(e) = current.take() {
                entries.push(validated(e)?);
            }
            current = Some(BaselineEntry {
                rule: String::new(),
                path: String::new(),
                line: 0,
                reason: String::new(),
                src_line: lineno,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("lint-allow.toml:{lineno}: expected `key = value`"));
        };
        let Some(e) = current.as_mut() else {
            return Err(format!(
                "lint-allow.toml:{lineno}: `{}` outside an [[allow]] table",
                key.trim()
            ));
        };
        let value = value.trim();
        match key.trim() {
            "rule" => e.rule = unquote(value, lineno)?,
            "path" => e.path = unquote(value, lineno)?,
            "reason" => e.reason = unquote(value, lineno)?,
            "line" => {
                e.line = value
                    .parse()
                    .map_err(|_| format!("lint-allow.toml:{lineno}: `line` must be an integer"))?;
            }
            other => {
                return Err(format!("lint-allow.toml:{lineno}: unknown key `{other}`"));
            }
        }
    }
    if let Some(e) = current.take() {
        entries.push(validated(e)?);
    }
    Ok(entries)
}

fn validated(e: BaselineEntry) -> Result<BaselineEntry, String> {
    let at = |what: &str| format!("lint-allow.toml:{}: [[allow]] entry {what}", e.src_line);
    if crate::rules::rule(&e.rule).is_none() {
        return Err(at(&format!("names unknown rule `{}`", e.rule)));
    }
    if crate::rules::META_RULES.contains(&e.rule.as_str()) {
        return Err(at(&format!("cannot baseline meta-rule `{}`", e.rule)));
    }
    if e.path.is_empty() || e.line == 0 {
        return Err(at("needs `path` and a non-zero `line`"));
    }
    if e.reason.trim().is_empty() {
        return Err(at("has no `reason`: every waiver carries a reason"));
    }
    Ok(e)
}

fn unquote(v: &str, lineno: u32) -> Result<String, String> {
    let inner = v
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("lint-allow.toml:{lineno}: expected a quoted string"))?;
    Ok(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
}

/// Render baseline entries back to `lint-allow.toml` text (used by
/// `--update-baseline`).  Entries are sorted for stable diffs.
pub fn render_baseline(entries: &[BaselineEntry]) -> String {
    let mut entries: Vec<&BaselineEntry> = entries.iter().collect();
    entries.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    let mut out = String::from(
        "# ispn-lint baseline: grandfathered findings, matched by exact rule+path+line.\n\
         # A stale entry (no longer matching a finding) fails `--deny` runs; regenerate\n\
         # with `cargo run -p ispn-lint -- --update-baseline` and re-justify the reasons.\n",
    );
    for e in entries {
        out.push_str("\n[[allow]]\n");
        out.push_str(&format!("rule = \"{}\"\n", escape(&e.rule)));
        out.push_str(&format!("path = \"{}\"\n", escape(&e.path)));
        out.push_str(&format!("line = {}\n", e.line));
        out.push_str(&format!("reason = \"{}\"\n", escape(&e.reason)));
    }
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    #[test]
    fn trailing_and_standalone_waivers_resolve_targets() {
        let src = "\
let a = 1; // ispn-lint: allow(wall-clock) -- trailing form\n\
// ispn-lint: allow(hash-order) -- standalone form\n\
#[allow(dead_code)]\n\
let b = 2;\n";
        let ws = collect(&tokenize(src));
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].target, 1);
        assert_eq!(
            ws[1].target, 4,
            "standalone waiver looks through the attribute"
        );
        assert!(ws.iter().all(|w| w.malformed.is_none()));
    }

    #[test]
    fn waivers_without_reasons_are_malformed() {
        for bad in [
            "// ispn-lint: allow(wall-clock)",
            "// ispn-lint: allow(wall-clock) --",
            "// ispn-lint: allow(wall-clock) --   ",
            "// ispn-lint: allow() -- reason",
            "// ispn-lint: allow(no-such-rule) -- reason",
            "// ispn-lint: allow(stale-waiver) -- meta",
            "// ispn-lint: deny(wall-clock) -- reason",
        ] {
            let ws = collect(&tokenize(bad));
            assert_eq!(ws.len(), 1, "{bad}");
            assert!(ws[0].malformed.is_some(), "{bad}");
        }
    }

    #[test]
    fn multi_rule_waivers_parse() {
        let ws = collect(&tokenize(
            "// ispn-lint: allow(wall-clock, hash-order) -- both excused here\nlet x = 1;\n",
        ));
        assert_eq!(ws[0].rules, ["wall-clock", "hash-order"]);
        assert_eq!(ws[0].reason, "both excused here");
    }

    #[test]
    fn baseline_round_trips_through_render_and_parse() {
        let entries = vec![BaselineEntry {
            rule: "panic-path".to_string(),
            path: "crates/scenario/src/sweep/dist.rs".to_string(),
            line: 42,
            reason: "invariant: \"worker present\" after ensure".to_string(),
            src_line: 0,
        }];
        let text = render_baseline(&entries);
        let back = parse_baseline(&text).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].rule, entries[0].rule);
        assert_eq!(back[0].path, entries[0].path);
        assert_eq!(back[0].line, entries[0].line);
        assert_eq!(back[0].reason, entries[0].reason);
    }

    #[test]
    fn baseline_rejects_missing_reasons_and_unknown_rules() {
        let no_reason = "[[allow]]\nrule = \"wall-clock\"\npath = \"a.rs\"\nline = 1\n";
        assert!(parse_baseline(no_reason).is_err());
        let unknown = "[[allow]]\nrule = \"nope\"\npath = \"a.rs\"\nline = 1\nreason = \"r\"\n";
        assert!(parse_baseline(unknown).is_err());
        let loose_key = "rule = \"wall-clock\"\n";
        assert!(parse_baseline(loose_key).is_err());
    }
}
