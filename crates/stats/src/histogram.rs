//! Fixed-bin histograms of delay samples.

/// A histogram with uniform-width bins over `[lo, hi)` plus overflow and
/// underflow counters.
///
/// Used by the extension experiments to plot full delay distributions (the
/// paper only reports summary statistics, but the distributions make the
/// FIFO-vs-WFQ jitter argument of Section 5 visible).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Create a histogram spanning `[lo, hi)` with `bins` uniform bins.
    ///
    /// # Panics
    /// Panics if `hi <= lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record a sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of samples recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// The `(low, high)` bounds of bin `i`.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }

    /// Fraction of in-range samples at or below the upper edge of bin `i`
    /// (an empirical CDF evaluated at bin boundaries).
    pub fn cdf_at_bin(&self, i: usize) -> f64 {
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            return 0.0;
        }
        let cum: u64 = self.bins[..=i].iter().sum();
        cum as f64 / in_range as f64
    }

    /// Render a small ASCII bar chart (one line per bin), useful in example
    /// binaries.
    pub fn ascii(&self, max_width: usize) -> String {
        let peak = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_bounds(i);
            let w = (c as f64 / peak as f64 * max_width as f64).round() as usize;
            out.push_str(&format!("[{lo:8.2},{hi:8.2}) {c:8} {}\n", "#".repeat(w)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(1.5);
        h.record(9.99);
        h.record(-1.0);
        h.record(10.0);
        assert_eq!(h.count(), 5);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[1], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn bin_bounds_tile_the_range() {
        let h = Histogram::new(2.0, 12.0, 5);
        assert_eq!(h.bin_bounds(0), (2.0, 4.0));
        assert_eq!(h.bin_bounds(4), (10.0, 12.0));
    }

    #[test]
    fn cdf_is_monotone_and_reaches_one() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for i in 0..100 {
            h.record(i as f64);
        }
        let mut last = 0.0;
        for i in 0..10 {
            let c = h.cdf_at_bin(i);
            assert!(c >= last);
            last = c;
        }
        assert!((last - 1.0).abs() < 1e-12);
    }

    #[test]
    fn samples_exactly_on_lo_and_hi_land_deterministically() {
        let mut h = Histogram::new(2.0, 12.0, 5);
        // `lo` is inclusive: it belongs to the first bin, not underflow.
        h.record(2.0);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.underflow(), 0);
        // `hi` is exclusive: it belongs to overflow, not the last bin.
        h.record(12.0);
        assert_eq!(h.bins()[4], 0);
        assert_eq!(h.overflow(), 1);
        // Just inside the upper edge stays in the last bin.
        h.record(12.0 - 1e-9);
        assert_eq!(h.bins()[4], 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn samples_on_interior_boundaries_join_the_upper_bin() {
        // Bin edges at 2, 4, 6, 8, 10, 12: every interior edge value is the
        // *inclusive lower* edge of the bin above it ([a, b) bins).
        let mut h = Histogram::new(2.0, 12.0, 5);
        for edge in [4.0, 6.0, 8.0, 10.0] {
            h.record(edge);
        }
        assert_eq!(h.bins(), &[0, 1, 1, 1, 1]);
        assert_eq!(h.underflow() + h.overflow(), 0);
        // Each landed exactly at its bin's lower bound.
        for i in 1..5 {
            assert_eq!(h.bin_bounds(i).0, 2.0 + 2.0 * i as f64);
        }
    }

    #[test]
    fn boundary_samples_are_never_double_counted() {
        // A width whose bin edges are not exactly representable (0.1 steps):
        // the floating-point index computation must still put every sample
        // in exactly one bucket.
        let mut h = Histogram::new(0.0, 0.7, 7);
        for i in 0..=7 {
            h.record(i as f64 * 0.1);
        }
        let total = h.underflow() + h.overflow() + h.bins().iter().sum::<u64>();
        assert_eq!(total, h.count());
        assert_eq!(h.count(), 8);
    }

    #[test]
    fn ascii_has_one_line_per_bin() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.record(1.0);
        h.record(1.2);
        h.record(3.0);
        let art = h.ascii(20);
        assert_eq!(art.lines().count(), 4);
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let _ = Histogram::new(5.0, 5.0, 3);
    }

    #[test]
    #[should_panic]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every sample lands in exactly one bucket (a bin, underflow or
        /// overflow) — in particular samples sitting exactly on `lo`, `hi`
        /// or an interior bin edge are counted once, never twice.
        #[test]
        fn every_sample_counted_exactly_once(
            lo in -1e3f64..1e3,
            width in 0.001f64..1e3,
            bins in 1usize..40,
            xs in proptest::collection::vec(-2e3f64..4e3, 0..200),
            edges in proptest::collection::vec(0usize..41, 0..20),
        ) {
            let hi = lo + width;
            let mut h = Histogram::new(lo, hi, bins);
            let mut n = 0u64;
            for &x in &xs {
                h.record(x);
                n += 1;
            }
            // Throw exact bin-edge samples in as well (including lo and hi).
            for &e in &edges {
                let (edge_lo, _) = h.bin_bounds(e.min(bins));
                h.record(edge_lo);
                n += 1;
            }
            let total = h.underflow() + h.overflow() + h.bins().iter().sum::<u64>();
            prop_assert_eq!(total, n);
            prop_assert_eq!(h.count(), n);
        }

        /// The recorded bucket is consistent with the bin's advertised
        /// bounds: a sample inside `[bin_lo, bin_hi)` increments that bin.
        #[test]
        fn edge_samples_join_their_advertised_bin(
            bins in 1usize..20,
            idx in 0usize..20,
        ) {
            let idx = idx.min(bins - 1);
            let mut h = Histogram::new(0.0, bins as f64, bins);
            let (bin_lo, _) = h.bin_bounds(idx);
            h.record(bin_lo);
            prop_assert_eq!(h.bins()[idx], 1, "lower edge is inclusive");
            prop_assert_eq!(h.underflow() + h.overflow(), 0);
        }
    }
}
