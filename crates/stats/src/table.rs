//! Plain-text table rendering.
//!
//! The experiment binaries and the bench harness print their results in the
//! same row/column layout as the paper's Tables 1–3, so a reader can put the
//! regenerated output next to the paper and compare shapes directly.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with a title (printed above the grid).
    pub fn new(title: impl Into<String>) -> Self {
        TextTable {
            title: title.into(),
            header: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Set the column headers.
    pub fn header<I, S>(mut self, cols: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.header = cols.into_iter().map(Into::into).collect();
        self
    }

    /// Append a row of cells (stringified by the caller).
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table to a `String`.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }

        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "{}", self.title);
        }
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                let _ = write!(line, "{:<width$}  ", cell, width = w);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        };
        if !self.header.is_empty() {
            render_row(&self.header, &widths, &mut out);
            let total: usize = widths
                .iter()
                .map(|w| w + 2)
                .sum::<usize>()
                .saturating_sub(2);
            let _ = writeln!(out, "{}", "-".repeat(total));
        }
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Format a floating point number the way the paper's tables do (two
/// decimal places).
pub fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows_aligned() {
        let mut t = TextTable::new("Table 1").header(["scheduling", "mean", "99.9 %ile"]);
        t.row(["WFQ", "3.16", "53.86"]);
        t.row(["FIFO", "3.17", "34.72"]);
        let s = t.render();
        assert!(s.contains("Table 1"));
        assert!(s.contains("scheduling"));
        assert!(s.contains("WFQ"));
        assert!(s.contains("34.72"));
        // Header separator present
        assert!(s.lines().any(|l| l.starts_with('-')));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn ragged_rows_do_not_panic() {
        let mut t = TextTable::new("").header(["a", "b"]);
        t.row(["1"]);
        t.row(["1", "2", "3"]);
        let s = t.render();
        assert!(s.contains('3'));
    }

    #[test]
    fn empty_table_renders_title_only() {
        let t = TextTable::new("nothing");
        assert_eq!(t.render().trim(), "nothing");
        assert!(t.is_empty());
    }

    #[test]
    fn fmt2_rounds() {
        assert_eq!(fmt2(1.23456), "1.23");
        assert_eq!(fmt2(2.0), "2.00");
    }

    #[test]
    fn display_matches_render() {
        let mut t = TextTable::new("x").header(["c"]);
        t.row(["v"]);
        assert_eq!(format!("{t}"), t.render());
    }
}
