//! Percentiles: exact (stored samples) and streaming (P² estimator).
//!
//! The paper's headline jitter metric is the 99.9th-percentile queueing
//! delay of a flow over a ten-minute run — a deep-tail quantile, so the
//! table-generating experiments store every end-to-end delay sample and
//! compute it exactly with [`SampleSet`].  Long-running monitors inside the
//! network (e.g. the measurement module feeding admission control) cannot
//! store every sample, so [`P2Quantile`] provides the classic Jain &
//! Chlamtac P² estimator as a constant-memory alternative.

/// A bag of stored samples with exact order statistics.
#[derive(Debug, Clone, Default)]
pub struct SampleSet {
    samples: Vec<f64>,
    sorted: bool,
}

impl SampleSet {
    /// Create an empty sample set.
    pub fn new() -> Self {
        SampleSet {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Create an empty sample set with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        SampleSet {
            samples: Vec::with_capacity(cap),
            sorted: true,
        }
    }

    /// Add one sample.
    ///
    /// NaN samples are rejected at the door: a NaN carries no ordering
    /// information, so admitting one would poison every order statistic
    /// (and used to panic inside the sort).  Rejected samples do not count
    /// towards [`len`](SampleSet::len); callers that care can compare
    /// `len()` before and after.  Infinities are ordered values and are
    /// kept.
    pub fn record(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Largest sample, or 0.0 if empty.
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0)
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            // `record` rejects NaN, so `total_cmp` orders exactly like the
            // old `partial_cmp` — but totally, so a NaN that slipped in
            // through a future code path sorts instead of panicking.
            self.samples.sort_unstable_by(f64::total_cmp);
            self.sorted = true;
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) using linear interpolation between order
    /// statistics; 0.0 if the set is empty.
    ///
    /// `quantile(0.999)` is the "99.9 %ile" column of the paper's tables.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        self.ensure_sorted();
        let n = self.samples.len();
        if n == 1 {
            return self.samples[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.samples[lo]
        } else {
            let frac = pos - lo as f64;
            self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac
        }
    }

    /// Convenience: the 99.9th percentile.
    pub fn p999(&mut self) -> f64 {
        self.quantile(0.999)
    }

    /// Convenience: the median.
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// Sample (`n − 1`) standard deviation of the stored samples — the
    /// "jitter" statistic of the scenario reports.  Computed by feeding the
    /// samples through the Welford accumulator of
    /// [`StreamingStats`](crate::StreamingStats) (one shared variance
    /// implementation, numerically stable for long runs of near-identical
    /// delays); 0.0 for fewer than two samples.
    pub fn sample_std_dev(&self) -> f64 {
        let mut acc = crate::StreamingStats::new();
        for &x in &self.samples {
            acc.record(x);
        }
        acc.sample_std_dev()
    }

    /// Fraction of samples strictly greater than `threshold` — the
    /// post-facto loss rate of a play-back application whose play-back point
    /// is set at `threshold`.
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let above = self.samples.iter().filter(|&&x| x > threshold).count();
        above as f64 / self.samples.len() as f64
    }

    /// Borrow the raw samples (unsorted order not guaranteed).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// The P² (piecewise-parabolic) streaming quantile estimator of Jain &
/// Chlamtac (1985): tracks a single quantile with five markers and no
/// stored samples.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based sample counts).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments.
    increments: [f64; 5],
    count: usize,
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Create an estimator for quantile `q` (e.g. 0.999).
    pub fn new(q: f64) -> Self {
        let q = q.clamp(0.0, 1.0);
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// Add one sample.  NaN samples are ignored (same policy as
    /// [`SampleSet::record`]) and do not advance
    /// [`count`](P2Quantile::count).
    pub fn record(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial.sort_unstable_by(f64::total_cmp);
                for i in 0..5 {
                    self.heights[i] = self.initial[i];
                }
            }
            return;
        }

        // Find the cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.heights[i] <= x && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Adjust interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            if (d >= 1.0 && self.positions[i + 1] - self.positions[i] > 1.0)
                || (d <= -1.0 && self.positions[i - 1] - self.positions[i] < -1.0)
            {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                    self.heights[i] = candidate;
                } else {
                    self.heights[i] = self.linear(i, d);
                }
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        h[i] + d * (h[j] - h[i]) / (p[j] - p[i])
    }

    /// Current estimate of the tracked quantile.
    ///
    /// With fewer than five samples the estimate falls back to the exact
    /// quantile of what has been seen.
    pub fn estimate(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.initial.len() < 5 {
            let mut v = self.initial.clone();
            v.sort_unstable_by(f64::total_cmp);
            let pos = (self.q * (v.len() - 1) as f64).round() as usize;
            return v[pos.min(v.len() - 1)];
        }
        self.heights[2]
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The quantile this estimator tracks.
    pub fn quantile(&self) -> f64 {
        self.q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_is_zero() {
        let mut s = SampleSet::new();
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn exact_quantiles_of_known_data() {
        let mut s = SampleSet::with_capacity(101);
        for i in 0..=100 {
            s.record(i as f64);
        }
        assert_eq!(s.len(), 101);
        assert_eq!(s.median(), 50.0);
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(1.0), 100.0);
        assert!((s.quantile(0.25) - 25.0).abs() < 1e-9);
        assert!((s.p999() - 99.9).abs() < 1e-9);
        assert_eq!(s.max(), 100.0);
        assert!((s.mean() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_interpolates() {
        let mut s = SampleSet::new();
        s.record(10.0);
        s.record(20.0);
        assert!((s.quantile(0.5) - 15.0).abs() < 1e-9);
        assert!((s.quantile(0.75) - 17.5).abs() < 1e-9);
    }

    #[test]
    fn single_sample_quantile() {
        let mut s = SampleSet::new();
        s.record(42.0);
        assert_eq!(s.quantile(0.1), 42.0);
        assert_eq!(s.quantile(0.999), 42.0);
    }

    #[test]
    fn sample_std_dev_degenerate_cases_are_zero() {
        // n = 0 and n = 1 are pinned to 0.0 — never NaN from a 0/0 divisor.
        let mut s = SampleSet::new();
        assert_eq!(s.sample_std_dev(), 0.0);
        s.record(42.0);
        assert_eq!(s.sample_std_dev(), 0.0);
        // n = 2: matches the textbook two-pass value exactly enough.
        s.record(44.0);
        assert!((s.sample_std_dev() - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn sample_std_dev_matches_two_pass_variance() {
        let mut s = SampleSet::new();
        let xs: Vec<f64> = (0..500)
            .map(|i| (i as f64 * 0.37).sin() * 3.0 + 10.0)
            .collect();
        for &x in &xs {
            s.record(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let two_pass = (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / (xs.len() - 1) as f64)
            .sqrt();
        assert!((s.sample_std_dev() - two_pass).abs() < 1e-9);
    }

    #[test]
    fn fraction_above_counts_strictly_greater() {
        let mut s = SampleSet::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.record(x);
        }
        assert_eq!(s.fraction_above(2.0), 0.5);
        assert_eq!(s.fraction_above(0.0), 1.0);
        assert_eq!(s.fraction_above(4.0), 0.0);
    }

    #[test]
    fn record_after_quantile_keeps_correctness() {
        let mut s = SampleSet::new();
        for x in [5.0, 1.0, 3.0] {
            s.record(x);
        }
        assert_eq!(s.median(), 3.0);
        s.record(10.0);
        s.record(0.0);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.quantile(1.0), 10.0);
    }

    #[test]
    fn nan_samples_are_rejected_not_panicked() {
        let mut s = SampleSet::new();
        s.record(2.0);
        s.record(f64::NAN);
        s.record(1.0);
        // The NaN never entered: two samples, sane order statistics.
        assert_eq!(s.len(), 2);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 2.0);
        assert!((s.mean() - 1.5).abs() < 1e-12);
        // Infinities are ordered values and stay.
        s.record(f64::INFINITY);
        assert_eq!(s.len(), 3);
        assert_eq!(s.quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn p2_ignores_nan_samples() {
        let mut p2 = P2Quantile::new(0.5);
        for x in [1.0, f64::NAN, 2.0, 3.0, f64::NAN, 4.0, 5.0, 6.0, 7.0] {
            p2.record(x);
        }
        assert_eq!(p2.count(), 7, "NaN must not advance the count");
        let e = p2.estimate();
        assert!((1.0..=7.0).contains(&e), "estimate {e}");
    }

    #[test]
    fn p2_tracks_median_of_uniform() {
        let mut p2 = P2Quantile::new(0.5);
        // deterministic pseudo-uniform ramp
        for i in 0..10_000 {
            let x = (i * 37 % 1000) as f64 / 1000.0;
            p2.record(x);
        }
        assert!((p2.estimate() - 0.5).abs() < 0.05, "{}", p2.estimate());
        assert_eq!(p2.count(), 10_000);
        assert_eq!(p2.quantile(), 0.5);
    }

    #[test]
    fn p2_tracks_high_quantile_against_exact() {
        let mut p2 = P2Quantile::new(0.95);
        let mut exact = SampleSet::new();
        // A mildly skewed sequence.
        for i in 0..20_000u32 {
            let x = ((i * 7919 % 10007) as f64 / 10007.0).powi(2) * 100.0;
            p2.record(x);
            exact.record(x);
        }
        let e = exact.quantile(0.95);
        assert!(
            (p2.estimate() - e).abs() / e < 0.05,
            "p2 {} exact {}",
            p2.estimate(),
            e
        );
    }

    #[test]
    fn p2_few_samples_fall_back_to_exact() {
        let mut p2 = P2Quantile::new(0.9);
        assert_eq!(p2.estimate(), 0.0);
        p2.record(3.0);
        p2.record(1.0);
        assert!(p2.estimate() >= 1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Quantiles are monotone in q and bounded by the sample extremes.
        #[test]
        fn quantiles_monotone(xs in proptest::collection::vec(0.0f64..1e6, 1..300)) {
            let mut s = SampleSet::new();
            for &x in &xs { s.record(x); }
            let q25 = s.quantile(0.25);
            let q50 = s.quantile(0.50);
            let q99 = s.quantile(0.99);
            let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(q25 <= q50 + 1e-9);
            prop_assert!(q50 <= q99 + 1e-9);
            prop_assert!(q25 >= min - 1e-9);
            prop_assert!(q99 <= max + 1e-9);
        }

        /// The P² estimate always stays within the observed range.
        #[test]
        fn p2_within_range(xs in proptest::collection::vec(0.0f64..1e3, 5..500), q in 0.01f64..0.99) {
            let mut p2 = P2Quantile::new(q);
            for &x in &xs { p2.record(x); }
            let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(p2.estimate() >= min - 1e-9);
            prop_assert!(p2.estimate() <= max + 1e-9);
        }
    }
}
