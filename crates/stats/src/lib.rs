//! # ispn-stats — measurement statistics for the ISPN reproduction
//!
//! Every table in CSZ'92 reports a handful of summary statistics of measured
//! per-packet queueing delays: the mean, the 99.9th percentile, and (for
//! Table 3) the maximum.  The admission-control proposal of Section 9 also
//! relies on *measured* quantities — the post-facto bound on utilization ν̂
//! and the measured maximal delay d̂ⱼ of each class — which must be
//! "consistently conservative estimates" taken over recent history.
//!
//! This crate collects those building blocks:
//!
//! * [`StreamingStats`] — count / mean / variance / min / max without
//!   storing samples (Welford's algorithm),
//! * [`SampleSet`] — stored samples with exact percentiles (used for the
//!   99.9th-percentile columns),
//! * [`P2Quantile`] — the P² streaming quantile estimator, for long-running
//!   monitors that cannot afford to store every sample,
//! * [`Histogram`] — fixed-width bins for delay distributions,
//! * [`WindowedMax`] / [`WindowedMean`] — sliding-time-window estimators
//!   that yield the conservative measurements the admission controller uses,
//! * [`TextTable`] — plain-text table rendering for the experiment binaries
//!   and bench harness so their output looks like the paper's tables.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod histogram;
pub mod percentile;
pub mod summary;
pub mod table;
pub mod window;

pub use histogram::Histogram;
pub use percentile::{P2Quantile, SampleSet};
pub use summary::StreamingStats;
pub use table::TextTable;
pub use window::{WindowedMax, WindowedMean};
