//! Sliding-time-window estimators.
//!
//! Section 9 of the paper bases admission control on *measured* quantities:
//! "The key to making the predictive service commitments reliable is to
//! choose appropriately conservative measures for ν̂ and d̂ⱼ; these should
//! not just be averages but consistently conservative estimates."
//!
//! [`WindowedMax`] keeps the maximum of samples observed over the last `W`
//! seconds of simulated time (a conservative estimate of per-class delay
//! d̂ⱼ), and [`WindowedMean`] keeps a windowed time-average (used for the
//! measured link utilization ν̂, where the "sample" is the amount of
//! real-time traffic carried per measurement interval).

use std::collections::VecDeque;

/// Advance `clock` to `now` and return the effective time: `max(clock,
/// now)`.  A `now` behind the clock — or NaN — resolves to the clock
/// unchanged, which is what keeps the windowed estimators' deques in time
/// order whatever a caller feeds them.
fn clamp_monotone(clock: &mut f64, now: f64) -> f64 {
    // `f64::max` returns the other operand when one is NaN, so a NaN `now`
    // falls back to the clock rather than poisoning it.
    *clock = clock.max(now);
    *clock
}

/// Maximum of timestamped samples within a sliding window.
///
/// Timestamps are caller-supplied `f64` seconds (the network monitor feeds
/// simulated time in seconds) and are expected to be non-decreasing.  The
/// estimator's clock **never runs backwards**: a timestamp earlier than the
/// latest time already seen (by `record` *or* `current`) is clamped forward
/// to it, so a stale or buggy caller can neither reorder the deque nor
/// resurrect expired history — in debug and release builds alike.  A NaN
/// timestamp clamps the same way (to the latest time seen).  Uses the
/// classic monotone deque so both `record` and `current` are amortized
/// O(1).
#[derive(Debug, Clone)]
pub struct WindowedMax {
    window: f64,
    /// Deque of (time, value) with values strictly decreasing.
    deque: VecDeque<(f64, f64)>,
    last_time: f64,
}

impl WindowedMax {
    /// Create a window of `window` seconds.
    pub fn new(window: f64) -> Self {
        assert!(window > 0.0, "window must be positive");
        WindowedMax {
            window,
            deque: VecDeque::new(),
            last_time: 0.0,
        }
    }

    /// Record `value` observed at time `now` (seconds).
    ///
    /// Time must be non-decreasing; a `now` earlier than the latest time
    /// seen is clamped forward to it (the sample is treated as arriving at
    /// the estimator's current clock), so a backwards timestamp cannot
    /// corrupt the deque's time order in release builds.
    pub fn record(&mut self, now: f64, value: f64) {
        let now = clamp_monotone(&mut self.last_time, now);
        while let Some(&(_, back)) = self.deque.back() {
            if back <= value {
                self.deque.pop_back();
            } else {
                break;
            }
        }
        self.deque.push_back((now, value));
        self.expire(now);
    }

    fn expire(&mut self, now: f64) {
        while let Some(&(t, _)) = self.deque.front() {
            if now - t > self.window {
                self.deque.pop_front();
            } else {
                break;
            }
        }
    }

    /// The maximum over the window ending at `now`; `default` if no samples
    /// remain in the window.  A `now` earlier than the latest time seen is
    /// clamped forward to it (expiry is permanent, so a backwards query
    /// could never resurrect dropped samples anyway).
    pub fn current(&mut self, now: f64, default: f64) -> f64 {
        let now = clamp_monotone(&mut self.last_time, now);
        self.expire(now);
        self.deque.front().map(|&(_, v)| v).unwrap_or(default)
    }

    /// The configured window length in seconds.
    pub fn window(&self) -> f64 {
        self.window
    }
}

/// Windowed mean of timestamped samples, with every retained sample stored
/// (the admission controller samples utilization at a fixed, modest rate so
/// the memory footprint is small and exactness is preferred).
///
/// Shares [`WindowedMax`]'s time contract: timestamps should be
/// non-decreasing, and any that are not (or are NaN) are clamped forward
/// to the latest time seen, so a backwards timestamp cannot leave the
/// deque out of time order or make `sum` drift out of sync with the
/// retained samples.
#[derive(Debug, Clone)]
pub struct WindowedMean {
    window: f64,
    deque: VecDeque<(f64, f64)>,
    sum: f64,
    last_time: f64,
}

impl WindowedMean {
    /// Create a window of `window` seconds.
    pub fn new(window: f64) -> Self {
        assert!(window > 0.0, "window must be positive");
        WindowedMean {
            window,
            deque: VecDeque::new(),
            sum: 0.0,
            last_time: 0.0,
        }
    }

    /// Record `value` observed at time `now` (seconds; non-decreasing, with
    /// backwards timestamps clamped forward to the latest time seen).
    pub fn record(&mut self, now: f64, value: f64) {
        let now = clamp_monotone(&mut self.last_time, now);
        self.deque.push_back((now, value));
        self.sum += value;
        self.expire(now);
    }

    fn expire(&mut self, now: f64) {
        while let Some(&(t, v)) = self.deque.front() {
            if now - t > self.window {
                self.sum -= v;
                self.deque.pop_front();
            } else {
                break;
            }
        }
    }

    /// Mean of samples in the window ending at `now`; `default` if empty.
    /// A `now` earlier than the latest time seen is clamped forward to it.
    pub fn current(&mut self, now: f64, default: f64) -> f64 {
        let now = clamp_monotone(&mut self.last_time, now);
        self.expire(now);
        if self.deque.is_empty() {
            default
        } else {
            self.sum / self.deque.len() as f64
        }
    }

    /// Number of samples currently inside the window (after expiring
    /// against the last recorded timestamp).
    pub fn len(&self) -> usize {
        self.deque.len()
    }

    /// `true` if no samples are inside the window.
    pub fn is_empty(&self) -> bool {
        self.deque.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_max_tracks_max_and_expires() {
        let mut w = WindowedMax::new(10.0);
        w.record(0.0, 5.0);
        w.record(1.0, 3.0);
        w.record(2.0, 8.0);
        assert_eq!(w.current(2.0, 0.0), 8.0);
        // At t=13 the first samples fall out but 8.0 (t=2) is still in.
        assert_eq!(w.current(11.0, 0.0), 8.0);
        // At t=13 everything has expired.
        assert_eq!(w.current(13.0, -1.0), -1.0);
    }

    #[test]
    fn windowed_max_default_when_empty() {
        let mut w = WindowedMax::new(5.0);
        assert_eq!(w.current(100.0, 42.0), 42.0);
    }

    #[test]
    fn windowed_max_keeps_later_smaller_values_after_peak_expires() {
        let mut w = WindowedMax::new(10.0);
        w.record(0.0, 100.0);
        w.record(5.0, 7.0);
        assert_eq!(w.current(5.0, 0.0), 100.0);
        // The 100.0 expires at t > 10, the 7.0 remains until t > 15.
        assert_eq!(w.current(12.0, 0.0), 7.0);
    }

    #[test]
    fn windowed_max_clamps_backwards_timestamps() {
        let mut w = WindowedMax::new(10.0);
        w.record(0.0, 1.0);
        w.record(20.0, 5.0);
        // A stale sample "from t=3" arrives late: it is treated as arriving
        // at the estimator's clock (t=20), so it neither reorders the deque
        // nor resurrects expired history…
        w.record(3.0, 9.0);
        assert_eq!(w.current(20.0, 0.0), 9.0);
        // …and it expires relative to its clamped time, not its claimed one.
        assert_eq!(w.current(29.0, 0.0), 9.0);
        assert_eq!(w.current(31.0, -1.0), -1.0);
    }

    #[test]
    fn windowed_max_query_clock_never_runs_backwards() {
        let mut w = WindowedMax::new(5.0);
        w.record(0.0, 7.0);
        assert_eq!(w.current(10.0, -1.0), -1.0, "expired at t=10");
        // A backwards query cannot resurrect the expired sample (expiry is
        // permanent either way; the clamp makes the contract explicit).
        assert_eq!(w.current(0.0, -1.0), -1.0);
        // A subsequent stale record lands at the clamped clock (t=10).
        w.record(1.0, 3.0);
        assert_eq!(w.current(10.0, -1.0), 3.0);
    }

    #[test]
    fn windowed_max_nan_timestamp_falls_back_to_the_clock() {
        let mut w = WindowedMax::new(10.0);
        w.record(4.0, 2.0);
        w.record(f64::NAN, 8.0); // treated as t=4
        assert_eq!(w.current(4.0, 0.0), 8.0);
        assert_eq!(w.current(15.0, -1.0), -1.0, "both expired together");
    }

    #[test]
    fn windowed_mean_clamps_backwards_timestamps() {
        let mut w = WindowedMean::new(5.0);
        w.record(0.0, 2.0);
        w.record(10.0, 4.0);
        // Clamped to t=10; the t=0 sample already left the window, so the
        // mean is over {4, 6} and the running sum stays consistent.
        w.record(1.0, 6.0);
        assert!((w.current(10.0, 0.0) - 5.0).abs() < 1e-12);
        assert_eq!(w.len(), 2);
        // The clamped sample expires with the t=10 cohort.
        assert!((w.current(16.0, 9.9) - 9.9).abs() < 1e-12);
        assert!(w.is_empty());
    }

    #[test]
    fn windowed_mean_basic() {
        let mut w = WindowedMean::new(10.0);
        w.record(0.0, 2.0);
        w.record(1.0, 4.0);
        assert!((w.current(1.0, 0.0) - 3.0).abs() < 1e-12);
        assert_eq!(w.len(), 2);
        // First sample expires.
        assert!((w.current(10.5, 0.0) - 4.0).abs() < 1e-12);
        assert!((w.current(100.0, 9.9) - 9.9).abs() < 1e-12);
        assert!(w.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The windowed max never under-reports: it is ≥ every sample whose
        /// timestamp is still within the window.
        #[test]
        fn windowed_max_is_conservative(
            samples in proptest::collection::vec((0.0f64..100.0, 0.0f64..50.0), 1..100),
            window in 1.0f64..20.0,
        ) {
            // Sort by time to satisfy the monotone-time contract.
            let mut samples = samples;
            samples.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let mut w = WindowedMax::new(window);
            for &(t, v) in &samples {
                w.record(t, v);
            }
            let now = samples.last().unwrap().0;
            let m = w.current(now, f64::NEG_INFINITY);
            for &(t, v) in &samples {
                if now - t <= window {
                    prop_assert!(m >= v - 1e-9);
                }
            }
        }

        /// Windowed mean is bounded by the min and max of in-window samples.
        #[test]
        fn windowed_mean_bounded(
            samples in proptest::collection::vec((0.0f64..100.0, 0.0f64..50.0), 1..100),
            window in 1.0f64..20.0,
        ) {
            let mut samples = samples;
            samples.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let mut w = WindowedMean::new(window);
            for &(t, v) in &samples {
                w.record(t, v);
            }
            let now = samples.last().unwrap().0;
            let in_window: Vec<f64> = samples
                .iter()
                .filter(|&&(t, _)| now - t <= window)
                .map(|&(_, v)| v)
                .collect();
            let mean = w.current(now, 0.0);
            if !in_window.is_empty() {
                let lo = in_window.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = in_window.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
            }
        }
    }
}
