//! Streaming summary statistics (Welford's online algorithm).

/// Count, mean, variance, minimum and maximum of a stream of `f64` samples,
/// computed incrementally in O(1) memory.
///
/// The variance update uses Welford's numerically stable recurrence, which
/// matters when hundreds of thousands of near-identical per-packet delays
/// are accumulated over a ten-minute simulated run.
#[derive(Debug, Clone, Default)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl StreamingStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        StreamingStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Add one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merge another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 if no samples were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0.0 for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sample (Bessel-corrected, `n − 1` divisor) variance, or 0.0 for
    /// fewer than two samples — the estimator the jitter columns of the
    /// scenario reports use.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample (`n − 1`) standard deviation; 0.0 for fewer than two samples.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_benign() {
        let s = StreamingStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.sample_std_dev(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn sample_variance_degenerate_cases_are_zero() {
        // n = 1: the n−1 divisor would be 0/0 — pinned to 0.0, not NaN.
        let mut s = StreamingStats::new();
        s.record(3.5);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.sample_std_dev(), 0.0);
        // n = 2: sample variance of {1, 3} is 2 (vs population variance 1).
        let mut t = StreamingStats::new();
        t.record(1.0);
        t.record(3.0);
        assert!((t.sample_variance() - 2.0).abs() < 1e-12);
        assert!((t.sample_std_dev() - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert!((t.variance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_sequence() {
        let mut s = StreamingStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn single_sample() {
        let mut s = StreamingStats::new();
        s.record(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), Some(3.5));
        assert_eq!(s.max(), Some(3.5));
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let mut all = StreamingStats::new();
        for &x in &xs {
            all.record(x);
        }
        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        for &x in &xs[..400] {
            a.record(x);
        }
        for &x in &xs[400..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = StreamingStats::new();
        a.record(1.0);
        a.record(2.0);
        let before_mean = a.mean();
        a.merge(&StreamingStats::new());
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), before_mean);

        let mut empty = StreamingStats::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
        assert_eq!(empty.mean(), before_mean);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn mean_is_bounded_by_min_and_max(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut s = StreamingStats::new();
            for &x in &xs {
                s.record(x);
            }
            prop_assert!(s.mean() >= s.min().unwrap() - 1e-9);
            prop_assert!(s.mean() <= s.max().unwrap() + 1e-9);
            prop_assert!(s.variance() >= -1e-9);
        }

        #[test]
        fn merge_matches_sequential(
            xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
            ys in proptest::collection::vec(-1e3f64..1e3, 1..100),
        ) {
            let mut seq = StreamingStats::new();
            for &x in xs.iter().chain(ys.iter()) {
                seq.record(x);
            }
            let mut a = StreamingStats::new();
            for &x in &xs { a.record(x); }
            let mut b = StreamingStats::new();
            for &y in &ys { b.record(y); }
            a.merge(&b);
            prop_assert!((a.mean() - seq.mean()).abs() < 1e-6);
            prop_assert!((a.variance() - seq.variance()).abs() < 1e-5);
        }
    }
}
