//! The network itself: switches, links, flows, agents and the event loop.
//!
//! The model is output-queued: every unidirectional link has, at its
//! upstream switch, one queueing discipline and one finite packet buffer.
//! Forwarding a packet means looking up the flow's next link at the current
//! switch, applying edge policing if this is the flow's first switch,
//! enqueueing into that link's discipline (or dropping if the buffer is
//! full) and, whenever the link goes idle, asking the discipline for the
//! next packet to transmit.

use std::collections::BTreeMap;

use ispn_core::admission::{AdmissionController, AdmissionDecision};
use ispn_core::{
    Conformance, FlowId, FlowSpec, Packet, ServiceClass, TokenBucket, TokenBucketSpec,
};
use ispn_sched::{
    class_bucket, Discipline, Fifo, GuaranteedInstall, ProbeStats, Probed, QueueDiscipline,
    SchedContext,
};
use ispn_sim::{EventQueue, SimTime};

use crate::agent::{Agent, AgentApi, AgentId, Delivery};
use crate::monitor::Monitor;
use crate::telemetry::NetTelemetry;
use crate::topology::{LinkId, Topology};

/// What to do with packets that fail the edge conformance check
/// (Section 8: "nonconforming packets are dropped or tagged").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoliceAction {
    /// Discard the packet at the first switch.
    Drop,
    /// Forward the packet but mark it [`Conformance::Tagged`].
    Tag,
}

/// Static description of one flow offered to the network.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// The sequence of links the flow traverses (must be a contiguous path).
    pub route: Vec<LinkId>,
    /// The service interface parameters the flow declared (Section 8).
    pub spec: FlowSpec,
    /// The scheduling class its packets receive at every switch.
    pub class: ServiceClass,
    /// Optional edge policer applied at the first switch.
    pub edge_policer: Option<(TokenBucketSpec, PoliceAction)>,
    /// Agent to notify when packets of this flow reach the destination.
    pub sink: Option<AgentId>,
}

impl FlowConfig {
    /// A datagram (best-effort) flow with no policing.
    pub fn datagram(route: Vec<LinkId>) -> Self {
        FlowConfig {
            route,
            spec: FlowSpec::Datagram,
            class: ServiceClass::Datagram,
            edge_policer: None,
            sink: None,
        }
    }

    /// A predicted-service flow at the given priority, policed at the edge.
    pub fn predicted(
        route: Vec<LinkId>,
        priority: u8,
        bucket: TokenBucketSpec,
        target_delay: SimTime,
        loss_rate: f64,
        action: PoliceAction,
    ) -> Self {
        FlowConfig {
            route,
            spec: FlowSpec::predicted(bucket, target_delay, loss_rate),
            class: ServiceClass::Predicted { priority },
            edge_policer: Some((bucket, action)),
            sink: None,
        }
    }

    /// A guaranteed-service flow with the given WFQ clock rate.  The network
    /// performs no conformance check on guaranteed flows (Section 8).
    pub fn guaranteed(route: Vec<LinkId>, clock_rate_bps: f64) -> Self {
        FlowConfig {
            route,
            spec: FlowSpec::guaranteed(clock_rate_bps),
            class: ServiceClass::Guaranteed,
            edge_policer: None,
            sink: None,
        }
    }

    /// Attach a sink agent.
    pub fn with_sink(mut self, sink: AgentId) -> Self {
        self.sink = Some(sink);
        self
    }
}

/// Why a dynamic flow-setup request failed (one hop's admission verdict).
#[derive(Debug, Clone, PartialEq)]
pub struct SetupError {
    /// The flow id allocated to the request; it stays registered but
    /// inactive, so the caller may retry the setup later with
    /// [`Network::admit_flow_on_link`] / [`Network::activate_flow`].
    pub flow: FlowId,
    /// Index into the route of the hop that refused the flow.
    pub hop: usize,
    /// The link whose admission controller refused the flow.
    pub link: LinkId,
    /// The failed criterion, as reported by the controller.
    pub reason: String,
}

impl std::fmt::Display for SetupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} refused at hop {} ({:?}): {}",
            self.flow, self.hop, self.link, self.reason
        )
    }
}

impl std::error::Error for SetupError {}

struct FlowState {
    config: FlowConfig,
    policer: Option<TokenBucket>,
    /// Σ 1/rate over the route (seconds per bit of fixed serialization).
    secs_per_bit: f64,
    /// Σ propagation over the route.
    total_propagation: SimTime,
    /// Whether the flow may currently inject packets.  Statically
    /// provisioned flows are born active; dynamically signalled flows stay
    /// inactive until every hop has admitted them, and return to inactive
    /// on release.
    active: bool,
    /// The flow has been marked for slot reclamation ([`Network::retire_flow`]):
    /// once its last in-flight packet leaves the network it is reported by
    /// [`Network::take_drained_flows`].  Cleared if the flow is reactivated.
    retired: bool,
    /// Packets of this flow currently inside the network (injected but not
    /// yet delivered or dropped).  A retired flow's id may only be recycled
    /// when this reaches zero.
    in_flight: u32,
    /// Links where reservation state (admission and/or scheduler) has been
    /// installed for this flow and must be released on teardown.
    installed_links: Vec<LinkId>,
}

/// Per-link admission-control state: the Section-9 controller plus the
/// sampling bookkeeping that feeds it live utilization measurements.
struct AdmissionState {
    controller: AdmissionController,
    sample_interval: SimTime,
    last_sample: SimTime,
    last_rt_bits: u64,
}

struct Port {
    discipline: Probed<Discipline>,
    busy: bool,
    admission: Option<AdmissionState>,
}

enum NetEvent {
    Timer {
        agent: AgentId,
        token: u64,
    },
    TxComplete {
        link: LinkId,
    },
    Arrival {
        packet: Packet,
    },
    /// A transmission completing on a zero-propagation link: the tail of
    /// the packet leaves the port at the instant its head reaches the next
    /// switch, so `TxComplete` and `Arrival` would always be pushed (and
    /// popped) back-to-back at the same timestamp.  Merging them halves
    /// the event traffic on the paper's zero-delay topologies.  The
    /// handler replays the exact two-event order: free the port (possibly
    /// starting the next transmission), then forward the packet.
    TxArrival {
        link: LinkId,
        packet: Packet,
    },
    AdmissionSample {
        link: LinkId,
    },
    /// Outcome of an agent-requested flow setup, delivered through the
    /// event queue (same timestamp, next dispatch) rather than by direct
    /// recursion — an agent that retries from `on_setup` must not be able
    /// to grow the call stack.
    SetupResult {
        agent: AgentId,
        token: u64,
        result: Result<FlowId, SetupError>,
    },
}

/// A no-op agent used as a placeholder while a real agent is borrowed for a
/// callback.
struct NoopAgent;
impl Agent for NoopAgent {}

/// The simulated packet network.
pub struct Network {
    topo: Topology,
    ports: Vec<Port>,
    flows: Vec<FlowState>,
    /// Flow-id slots freed by [`recycle_flow_slot`](Network::recycle_flow_slot),
    /// reused by the next [`register_flow`] so long churn runs keep a
    /// bounded flow table instead of growing one entry per admission ever.
    free_flow_slots: Vec<FlowId>,
    /// Retired flows whose last in-flight packet has left the network,
    /// staged for the driver to snapshot (final reports) and recycle.
    drained: Vec<FlowId>,
    agents: Vec<Box<dyn Agent>>,
    monitor: Monitor,
    telemetry: NetTelemetry,
    queue: EventQueue<NetEvent>,
    now: SimTime,
    /// Horizon of the `run_events` call in progress, mirrored into fields
    /// so the tx-complete elision in [`start_transmission`] can tell
    /// whether a completion may be processed inline or must stay queued
    /// for a later run.
    ///
    /// [`start_transmission`]: Network::start_transmission
    run_horizon: SimTime,
    run_inclusive: bool,
    started: bool,
    /// Number of agents whose `start` callback has already run (agents may
    /// be added mid-run, e.g. flows admitted by admission control; they are
    /// started at the next `run_until`).
    started_agents: usize,
}

impl Network {
    /// Create a network over `topology`; every link starts with a FIFO
    /// discipline, replaceable with [`set_discipline`].
    ///
    /// [`set_discipline`]: Network::set_discipline
    pub fn new(topology: Topology) -> Self {
        let ports = (0..topology.num_links())
            .map(|_| Port {
                discipline: Probed::new(Discipline::from(Fifo::new())),
                busy: false,
                admission: None,
            })
            .collect();
        let num_links = topology.num_links();
        Network {
            topo: topology,
            ports,
            flows: Vec::new(),
            free_flow_slots: Vec::new(),
            drained: Vec::new(),
            agents: Vec::new(),
            monitor: Monitor::new(0, num_links),
            telemetry: NetTelemetry::new(num_links),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            run_horizon: SimTime::ZERO,
            run_inclusive: false,
            started: false,
            started_agents: 0,
        }
    }

    /// The topology this network runs over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The measurement sink.
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Mutable access to the measurement sink (e.g. to set a warm-up
    /// period or pull reports that need sorting).
    pub fn monitor_mut(&mut self) -> &mut Monitor {
        &mut self.monitor
    }

    /// The engine telemetry accumulated so far (drops per link and class,
    /// admission verdict totals).  Unlike the [`Monitor`], these counters
    /// are not warm-up-gated: they see every event from t = 0.
    pub fn net_telemetry(&self) -> &NetTelemetry {
        &self.telemetry
    }

    /// The probe counters of one link's output port: enqueues and dequeues
    /// per class bucket, plus the port's peak queue depth.
    pub fn link_probe(&self, link: LinkId) -> &ProbeStats {
        self.ports[link.index()].discipline.stats()
    }

    /// Total events dispatched by the event loop so far.
    pub fn events_processed(&self) -> u64 {
        self.queue.dispatched_count()
    }

    /// The deepest the pending-event set ever was.
    pub fn event_queue_high_water(&self) -> u64 {
        self.queue.depth_high_water()
    }

    /// The deepest any output-port queue ever was (in packets).
    pub fn peak_port_depth(&self) -> u64 {
        self.ports
            .iter()
            .map(|p| p.discipline.stats().depth_high_water.get())
            .max()
            .unwrap_or(0)
    }

    /// Structural size of the flow table in bytes: the per-flow state
    /// records plus their route and installed-link storage, plus the
    /// per-flow state the schedulers hold on every port (lane tables,
    /// slot maps, pooled queue segments).  A deterministic length-based
    /// estimate (element counts × element sizes), not an allocator
    /// measurement — so two same-seed runs agree and growth is
    /// attributable to flow count, not allocator policy.
    pub fn flow_table_bytes(&self) -> u64 {
        let mut bytes = self.flows.len() * std::mem::size_of::<FlowState>();
        for f in &self.flows {
            bytes += f.config.route.len() * std::mem::size_of::<LinkId>();
            bytes += f.installed_links.len() * std::mem::size_of::<LinkId>();
        }
        bytes as u64
            + self
                .ports
                .iter()
                .map(|p| p.discipline.state_bytes())
                .sum::<u64>()
    }

    /// Structural size of the per-link reservation state in bytes: the
    /// admission-control records installed on ports plus the per-flow
    /// reservation entries the schedulers keep (guaranteed rate maps, GPS
    /// clock state).  Same estimation rules as
    /// [`flow_table_bytes`](Network::flow_table_bytes).
    pub fn reservation_state_bytes(&self) -> u64 {
        (self.ports.iter().filter(|p| p.admission.is_some()).count()
            * std::mem::size_of::<AdmissionState>()) as u64
            + self
                .ports
                .iter()
                .map(|p| p.discipline.reservation_bytes())
                .sum::<u64>()
    }

    /// Total segment-pool growth events across every port's scheduler: how
    /// many times pooled queue storage had to allocate a fresh segment.
    /// Flat between two samples ⇒ the interval ran allocation-free.
    pub fn sched_pool_grow_events(&self) -> u64 {
        self.ports
            .iter()
            .map(|p| p.discipline.pool_grow_events())
            .sum()
    }

    /// Total segment-pool high-water mark (in segments) across every port's
    /// scheduler.
    pub fn sched_pool_segments_high_water(&self) -> u64 {
        self.ports
            .iter()
            .map(|p| p.discipline.pool_segments_high_water())
            .sum()
    }

    /// Snapshot every engine counter into a named-metric registry (event
    /// loop, per-port probes, drops, admission verdicts).
    pub fn telemetry_registry(&self) -> ispn_telemetry::Registry {
        let probes: Vec<&ProbeStats> = self.ports.iter().map(|p| p.discipline.stats()).collect();
        let mut reg = ispn_telemetry::Registry::new();
        reg.record("events.processed", self.events_processed());
        reg.record("events.queue_high_water", self.event_queue_high_water());
        reg.record("ports.peak_depth", self.peak_port_depth());
        reg.record("flows.table_bytes", self.flow_table_bytes());
        reg.record("reservations.state_bytes", self.reservation_state_bytes());
        reg.record("sched.pool_grow_events", self.sched_pool_grow_events());
        reg.record(
            "sched.pool_segments_high_water",
            self.sched_pool_segments_high_water(),
        );
        for (name, value) in self.telemetry.registry(&probes).entries() {
            reg.record(name.clone(), *value);
        }
        reg
    }

    /// Replace the queueing discipline of a link's output port.  Accepts
    /// any of the built-in disciplines directly (they convert into
    /// [`Discipline`] variants dispatched by `match` on the hot path), a
    /// prebuilt [`Discipline`], or a `Box<dyn QueueDiscipline>` for
    /// downstream disciplines (which ride the `Custom` escape hatch).
    ///
    /// # Panics
    /// Panics if called after the simulation has started or if the port has
    /// packets queued.
    pub fn set_discipline(&mut self, link: LinkId, discipline: impl Into<Discipline>) {
        assert!(
            !self.started,
            "cannot swap disciplines after the run started"
        );
        assert!(
            self.ports[link.index()].discipline.is_empty(),
            "cannot swap a non-empty discipline"
        );
        self.ports[link.index()].discipline = Probed::new(discipline.into());
    }

    /// The name of the discipline installed on a link (for reports).
    pub fn discipline_name(&self, link: LinkId) -> &'static str {
        self.ports[link.index()].discipline.name()
    }

    /// Register an agent and return its id.
    pub fn add_agent(&mut self, agent: Box<dyn Agent>) -> AgentId {
        let id = AgentId(self.agents.len());
        self.agents.push(agent);
        id
    }

    /// Register a flow and return its id.  The flow is immediately active
    /// (static provisioning — no admission control is consulted).
    ///
    /// # Panics
    /// Panics if the route is not a contiguous path in the topology.
    pub fn add_flow(&mut self, config: FlowConfig) -> FlowId {
        self.register_flow(config, true)
    }

    /// Register a flow without activating it: packets injected for it are
    /// discarded (and counted) until [`activate_flow`] is called.  This is
    /// the first step of dynamic flow setup — the signaling layer allocates
    /// the identity, then installs per-hop reservations, then activates.
    ///
    /// [`activate_flow`]: Network::activate_flow
    pub fn add_flow_inactive(&mut self, config: FlowConfig) -> FlowId {
        self.register_flow(config, false)
    }

    fn register_flow(&mut self, config: FlowConfig, active: bool) -> FlowId {
        assert!(
            self.topo.validate_route(&config.route),
            "flow route is not a contiguous path"
        );
        assert!(!config.route.is_empty(), "non-empty route");
        // Forwarding is hop-indexed (the packet carries its position on the
        // route), so no per-node table is kept — but a route that visited a
        // switch twice would have been ambiguous under node-keyed
        // forwarding, and rejecting it keeps the two models equivalent.
        let mut seen_nodes = BTreeMap::new();
        let mut secs_per_bit = 0.0;
        let mut total_propagation = SimTime::ZERO;
        for (i, link) in config.route.iter().enumerate() {
            let params = self.topo.link(*link);
            let prev = seen_nodes.insert(params.from.0, i);
            assert!(
                prev.is_none(),
                "route visits switch {:?} twice",
                params.from
            );
            secs_per_bit += 1.0 / params.rate_bps;
            total_propagation += params.propagation;
        }
        let policer = config.edge_policer.map(|(spec, _)| TokenBucket::new(spec));
        let state = FlowState {
            config,
            policer,
            secs_per_bit,
            total_propagation,
            active,
            retired: false,
            in_flight: 0,
            installed_links: Vec::new(),
        };
        let id = match self.free_flow_slots.pop() {
            Some(id) => {
                self.flows[id.index()] = state;
                id
            }
            None => {
                let id = FlowId(self.flows.len() as u32);
                self.flows.push(state);
                id
            }
        };
        self.monitor.ensure_flows(self.flows.len());
        id
    }

    /// The configuration of a registered flow.
    pub fn flow_config(&self, flow: FlowId) -> &FlowConfig {
        &self.flows[flow.index()].config
    }

    /// Attach (or replace) the sink agent of a flow.
    ///
    /// Needed because flows and agents reference each other: transports
    /// create their flows first, then their endpoint agents, then wire the
    /// delivery callbacks up with this call.
    pub fn set_flow_sink(&mut self, flow: FlowId, sink: AgentId) {
        assert!(sink.0 < self.agents.len(), "unknown agent {sink:?}");
        self.flows[flow.index()].config.sink = Some(sink);
    }

    /// Number of registered flows.
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    // ----- dynamic flow signaling (control plane) -------------------------

    /// Put a link under measurement-based admission control.
    ///
    /// The controller is fed live from this point on: every transmitted
    /// predicted-class packet reports its per-hop queueing delay to d̂ⱼ, and
    /// every `sample_interval` the real-time throughput since the previous
    /// sample becomes one ν̂ utilization sample.
    pub fn enable_admission(
        &mut self,
        link: LinkId,
        controller: AdmissionController,
        sample_interval: SimTime,
    ) {
        assert!(
            sample_interval > SimTime::ZERO,
            "sampling needs a positive interval"
        );
        self.ports[link.index()].admission = Some(AdmissionState {
            controller,
            sample_interval,
            last_sample: self.now,
            last_rt_bits: self.monitor.link_realtime_bits_sent(link.index()),
        });
        self.queue.push(
            self.now + sample_interval,
            NetEvent::AdmissionSample { link },
        );
    }

    /// The admission controller of a link, if one was installed.
    pub fn admission(&self, link: LinkId) -> Option<&AdmissionController> {
        self.ports[link.index()]
            .admission
            .as_ref()
            .map(|a| &a.controller)
    }

    /// Mutable access to a link's admission controller (e.g. for the
    /// signaling layer's renegotiation bookkeeping, or to tune the safety
    /// factor).
    pub fn admission_mut(&mut self, link: LinkId) -> Option<&mut AdmissionController> {
        self.ports[link.index()]
            .admission
            .as_mut()
            .map(|a| &mut a.controller)
    }

    /// Whether a flow is currently allowed to inject packets.
    pub fn flow_active(&self, flow: FlowId) -> bool {
        self.flows[flow.index()].active
    }

    /// Activate a flow whose per-hop reservations are in place.
    pub fn activate_flow(&mut self, flow: FlowId) {
        let f = &mut self.flows[flow.index()];
        f.active = true;
        // A retry that revives a flow marked for reclamation wins the race:
        // the slot stays live.
        f.retired = false;
    }

    /// Deactivate a flow without touching its reservations (used by the
    /// signaling layer when a teardown starts: the source is silenced at
    /// once while the release message still travels hop by hop).
    pub fn deactivate_flow(&mut self, flow: FlowId) {
        self.flows[flow.index()].active = false;
    }

    /// The links on which reservation state is currently installed for a
    /// flow (in installation order).
    pub fn installed_links(&self, flow: FlowId) -> &[LinkId] {
        &self.flows[flow.index()].installed_links
    }

    /// Ask one link to admit `flow` at the current simulated time, and on
    /// acceptance install the reservation state (admission-controller
    /// bookkeeping plus per-flow scheduler state for guaranteed flows).
    ///
    /// Links without an admission controller accept everything — but still
    /// receive scheduler installs, so statically over-provisioned setups
    /// keep working.
    pub fn admit_flow_on_link(&mut self, flow: FlowId, link: LinkId) -> AdmissionDecision {
        let spec = self.flows[flow.index()].config.spec.clone();
        let priority = self.flows[flow.index()].config.class.priority();
        let now = self.now;
        let port = &mut self.ports[link.index()];
        let decision = match (&spec, port.admission.as_mut()) {
            (_, None) => AdmissionDecision::Accept,
            (FlowSpec::Guaranteed { clock_rate_bps }, Some(ad)) => {
                ad.controller.request_guaranteed(*clock_rate_bps)
            }
            (FlowSpec::Predicted { bucket, .. }, Some(ad)) => {
                ad.controller
                    .request_predicted(now, *bucket, priority.unwrap_or(0))
            }
            (FlowSpec::Datagram, Some(_)) => AdmissionDecision::Accept,
        };
        if decision.is_accept() {
            if let FlowSpec::Guaranteed { clock_rate_bps } = spec {
                let veto =
                    self.install_guaranteed_or_veto(link, flow, clock_rate_bps, clock_rate_bps);
                if !veto.is_accept() {
                    self.telemetry.record_admission_reject();
                    return veto;
                }
            }
            self.flows[flow.index()].installed_links.push(link);
            self.telemetry.record_admission_accept();
        } else {
            self.telemetry.record_admission_reject();
        }
        decision
    }

    /// Install per-flow guaranteed scheduler state on one link, letting the
    /// scheduler veto: a refusing scheduler overrides an accepting
    /// controller (or the absence of one) — otherwise the flow would run
    /// with no isolation at all.  On refusal `controller_release_bps` is
    /// handed back to the link's admission controller (the rate the caller
    /// had just reserved: the full clock rate on setup, the delta on a
    /// renegotiated increase) and a `Reject` is returned.
    pub fn install_guaranteed_or_veto(
        &mut self,
        link: LinkId,
        flow: FlowId,
        rate_bps: f64,
        controller_release_bps: f64,
    ) -> AdmissionDecision {
        let port = &mut self.ports[link.index()];
        if port.discipline.install_guaranteed(flow, rate_bps) == GuaranteedInstall::Refused {
            if let Some(ad) = port.admission.as_mut() {
                ad.controller.release_guaranteed(controller_release_bps);
            }
            return AdmissionDecision::Reject {
                reason: format!(
                    "scheduler refused guaranteed rate {rate_bps:.0} bps \
                     (per-flow reservations exhausted)"
                ),
            };
        }
        AdmissionDecision::Accept
    }

    /// Release the reservation state `flow` holds on one link.  Returns
    /// `false` if nothing was installed there.
    pub fn release_flow_on_link(&mut self, flow: FlowId, link: LinkId) -> bool {
        let state = &mut self.flows[flow.index()];
        let Some(pos) = state.installed_links.iter().position(|&l| l == link) else {
            return false;
        };
        state.installed_links.swap_remove(pos);
        let spec = state.config.spec.clone();
        let now = self.now;
        let port = &mut self.ports[link.index()];
        if let FlowSpec::Guaranteed { clock_rate_bps } = spec {
            if let Some(ad) = port.admission.as_mut() {
                ad.controller.release_guaranteed(clock_rate_bps);
            }
            port.discipline.remove_flow(now, flow);
        }
        true
    }

    /// Set up a flow end to end at the current simulated time: register it,
    /// run hop-by-hop admission along its route, and activate it.
    ///
    /// On the first rejection every reservation installed so far is rolled
    /// back and the flow is left registered but inactive (its id is in the
    /// returned [`SetupError`], so a caller may re-try later).  This is the
    /// synchronous setup path; `ispn-signal` layers per-hop control-packet
    /// latency on top of the same per-link primitives.
    pub fn request_flow(&mut self, config: FlowConfig) -> Result<FlowId, SetupError> {
        let flow = self.add_flow_inactive(config);
        let route = self.flows[flow.index()].config.route.clone();
        for (hop, &link) in route.iter().enumerate() {
            match self.admit_flow_on_link(flow, link) {
                AdmissionDecision::Accept => {}
                AdmissionDecision::Reject { reason } => {
                    for &installed in route[..hop].iter() {
                        self.release_flow_on_link(flow, installed);
                    }
                    return Err(SetupError {
                        flow,
                        hop,
                        link,
                        reason,
                    });
                }
            }
        }
        self.activate_flow(flow);
        Ok(flow)
    }

    /// Tear down a flow at the current simulated time: release every
    /// reservation it holds and deactivate it.  Packets of the flow already
    /// inside the network are still delivered; new injections are discarded.
    pub fn release_flow(&mut self, flow: FlowId) {
        let links = std::mem::take(&mut self.flows[flow.index()].installed_links);
        for link in links {
            // Re-insert so release_flow_on_link's bookkeeping stays in one
            // place, then release.
            self.flows[flow.index()].installed_links.push(link);
            self.release_flow_on_link(flow, link);
        }
        self.deactivate_flow(flow);
    }

    // ----- flow-slot reclamation ------------------------------------------

    /// Mark a torn-down flow's id slot for reclamation.  The flow must
    /// already be inactive with its reservations released; once its last
    /// in-flight packet leaves the network the flow is reported by
    /// [`take_drained_flows`](Network::take_drained_flows), after which the
    /// driver may snapshot its final statistics and call
    /// [`recycle_flow_slot`](Network::recycle_flow_slot).  Never calling
    /// these hooks is always safe — the flow table then simply grows
    /// monotonically, as it did before reclamation existed.
    pub fn retire_flow(&mut self, flow: FlowId) {
        self.flows[flow.index()].retired = true;
        self.note_if_drained(flow);
    }

    /// Retired flows whose last in-flight packet has left the network since
    /// the previous call.  Each flow appears exactly once (unless retired
    /// again after a revival).
    pub fn take_drained_flows(&mut self) -> Vec<FlowId> {
        std::mem::take(&mut self.drained)
    }

    /// Packets of this flow currently inside the network.
    pub fn flow_in_flight(&self, flow: FlowId) -> u32 {
        self.flows[flow.index()].in_flight
    }

    /// Return a drained flow's id slot to the free list for reuse by a
    /// future [`add_flow`](Network::add_flow) /
    /// [`request_flow`](Network::request_flow).  The flow's monitor
    /// statistics are reset, so callers that need its final report must
    /// snapshot it first.  A no-op if the flow came back to life (active,
    /// packets in flight, or reservations re-installed) since it drained.
    pub fn recycle_flow_slot(&mut self, flow: FlowId) {
        let f = &self.flows[flow.index()];
        if f.active || f.in_flight > 0 || !f.installed_links.is_empty() {
            return;
        }
        if self.free_flow_slots.contains(&flow) {
            return; // already recycled (idempotence under double retire)
        }
        self.monitor.reset_flow(flow);
        self.free_flow_slots.push(flow);
    }

    /// One of `flow`'s packets left the network (delivered or dropped).
    fn packet_died(&mut self, flow: FlowId) {
        let f = &mut self.flows[flow.index()];
        debug_assert!(f.in_flight > 0, "in-flight underflow for {flow}");
        f.in_flight = f.in_flight.saturating_sub(1);
        self.note_if_drained(flow);
    }

    /// Stage `flow` for the driver if it is retired and fully drained.
    fn note_if_drained(&mut self, flow: FlowId) {
        let f = &mut self.flows[flow.index()];
        if f.retired && !f.active && f.in_flight == 0 {
            f.retired = false;
            self.drained.push(flow);
        }
    }

    /// Replace the declared token bucket of a predicted flow (successful
    /// renegotiation): the spec and the edge policer both switch to the new
    /// `(r, b)`.  The caller is responsible for having re-run admission on
    /// every hop first.
    ///
    /// # Panics
    /// Panics if the flow is not predicted-service.
    pub fn update_flow_bucket(&mut self, flow: FlowId, bucket: TokenBucketSpec) {
        let now = self.now;
        let state = &mut self.flows[flow.index()];
        match &mut state.config.spec {
            FlowSpec::Predicted { bucket: b, .. } => *b = bucket,
            other => panic!("cannot renegotiate a bucket on {other:?}"),
        }
        if let Some((spec, _)) = &mut state.config.edge_policer {
            *spec = bucket;
            // Carry the current token level into the new profile — a fresh
            // (full) bucket would hand the flow a free burst of depth_bits
            // on every renegotiation.
            match state.policer.as_mut() {
                Some(policer) => policer.reconfigure(now, bucket),
                None => state.policer = Some(TokenBucket::new(bucket)),
            }
        }
    }

    /// Change the clock rate a guaranteed flow's spec declares (successful
    /// guaranteed renegotiation).  The caller must have applied the rate
    /// change on every hop's controller and scheduler first, so that
    /// subsequent releases stay consistent with the recorded spec.
    ///
    /// # Panics
    /// Panics if the flow is not guaranteed-service.
    pub fn update_flow_clock_rate(&mut self, flow: FlowId, rate_bps: f64) {
        assert!(rate_bps > 0.0);
        match &mut self.flows[flow.index()].config.spec {
            FlowSpec::Guaranteed { clock_rate_bps } => *clock_rate_bps = rate_bps,
            other => panic!("cannot renegotiate a clock rate on {other:?}"),
        }
    }

    /// Install (or update) per-flow guaranteed scheduler state on one link
    /// without touching the admission controller — the renegotiation path,
    /// where the controller's delta accounting is done by the caller.
    pub fn install_guaranteed_rate(
        &mut self,
        link: LinkId,
        flow: FlowId,
        rate_bps: f64,
    ) -> GuaranteedInstall {
        self.ports[link.index()]
            .discipline
            .install_guaranteed(flow, rate_bps)
    }

    /// The fixed (non-queueing) delay a packet of `size_bits` experiences on
    /// this flow's route: serialization at every hop plus propagation.
    pub fn fixed_delay(&self, flow: FlowId, size_bits: u64) -> SimTime {
        let f = &self.flows[flow.index()];
        SimTime::from_secs_f64(size_bits as f64 * f.secs_per_bit) + f.total_propagation
    }

    /// Inject a packet directly (used by tests and by agent outboxes).  The
    /// packet enters the network at its flow's first switch at the current
    /// simulated time.
    pub fn inject(&mut self, packet: Packet) {
        assert!(
            (packet.flow.index()) < self.flows.len(),
            "packet for unregistered flow {}",
            packet.flow
        );
        if !self.flows[packet.flow.index()].active {
            // The flow has no (or no longer any) reservation: its packets
            // never enter the network.  Tracked separately from loss so a
            // torn-down flow's delay statistics stay clean.
            self.monitor.record_inactive_drop(packet.flow, self.now);
            return;
        }
        self.monitor.record_generated(packet.flow, self.now);
        self.flows[packet.flow.index()].in_flight += 1;
        debug_assert_eq!(packet.hop, 0, "injected packet already on its way");
        self.forward(packet);
    }

    /// Run the simulation until `horizon` (exclusive).  May be called
    /// repeatedly with increasing horizons.
    pub fn run_until(&mut self, horizon: SimTime) {
        self.run_events(horizon, false);
    }

    /// Run the simulation *through* `horizon` (inclusive): every data-plane
    /// event with timestamp ≤ `horizon` is processed.  Interleaving drivers
    /// use this to give data-plane events precedence over control messages
    /// and scheduled actions due at the same instant (the documented
    /// data ≺ control ≺ action tie-break); [`run_until`](Network::run_until)
    /// keeps its exclusive contract for plain horizon stepping.
    pub fn run_through(&mut self, horizon: SimTime) {
        self.run_events(horizon, true);
    }

    fn run_events(&mut self, horizon: SimTime, inclusive: bool) {
        self.run_horizon = horizon;
        self.run_inclusive = inclusive;
        self.started = true;
        while self.started_agents < self.agents.len() {
            let next = AgentId(self.started_agents);
            self.started_agents += 1;
            self.dispatch_start(next);
        }
        while let Some(t) = self.queue.peek_time() {
            if t > horizon || (t == horizon && !inclusive) {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked event exists");
            debug_assert!(t >= self.now, "event from the past");
            self.now = t;
            match ev {
                NetEvent::Timer { agent, token } => self.dispatch_timer(agent, token),
                NetEvent::TxComplete { link } => self.on_tx_complete(link),
                NetEvent::Arrival { packet } => self.forward(packet),
                NetEvent::TxArrival { link, packet } => self.on_tx_arrival(link, packet),
                NetEvent::AdmissionSample { link } => self.on_admission_sample(link),
                NetEvent::SetupResult {
                    agent,
                    token,
                    result,
                } => self.dispatch_setup(agent, token, result),
            }
        }
        self.now = horizon;
        self.monitor.advance_horizon(horizon);
    }

    // ----- agent dispatch -------------------------------------------------

    fn apply_commands(&mut self, agent: AgentId, api: AgentApi) {
        let commands = api.into_commands();
        for p in commands.packets {
            self.inject(p);
        }
        for (delay, token) in commands.timers {
            self.queue
                .push(self.now + delay, NetEvent::Timer { agent, token });
        }
        for flow in commands.releases {
            self.release_flow(flow);
        }
        for (config, token) in commands.setups {
            let result = self.request_flow(config);
            self.queue.push(
                self.now,
                NetEvent::SetupResult {
                    agent,
                    token,
                    result,
                },
            );
        }
    }

    fn dispatch_start(&mut self, id: AgentId) {
        let mut api = AgentApi::new(self.now);
        let mut agent = std::mem::replace(&mut self.agents[id.0], Box::new(NoopAgent));
        agent.start(&mut api);
        self.agents[id.0] = agent;
        self.apply_commands(id, api);
    }

    fn dispatch_timer(&mut self, id: AgentId, token: u64) {
        let mut api = AgentApi::new(self.now);
        let mut agent = std::mem::replace(&mut self.agents[id.0], Box::new(NoopAgent));
        agent.on_timer(token, &mut api);
        self.agents[id.0] = agent;
        self.apply_commands(id, api);
    }

    fn dispatch_setup(&mut self, id: AgentId, token: u64, result: Result<FlowId, SetupError>) {
        let mut api = AgentApi::new(self.now);
        let mut agent = std::mem::replace(&mut self.agents[id.0], Box::new(NoopAgent));
        agent.on_setup(token, result, &mut api);
        self.agents[id.0] = agent;
        self.apply_commands(id, api);
    }

    fn dispatch_delivery(&mut self, id: AgentId, delivery: Delivery) {
        let mut api = AgentApi::new(self.now);
        let mut agent = std::mem::replace(&mut self.agents[id.0], Box::new(NoopAgent));
        agent.on_packet(delivery, &mut api);
        self.agents[id.0] = agent;
        self.apply_commands(id, api);
    }

    // ----- forwarding -----------------------------------------------------

    fn forward(&mut self, mut packet: Packet) {
        let flow_idx = packet.flow.index();
        let hop = packet.hop as usize;
        let route = &self.flows[flow_idx].config.route;
        if hop == route.len() {
            self.deliver(packet);
            return;
        }
        let link = route[hop];

        // Edge policing at the flow's first switch only (Section 8: "After
        // that initial check, conformance is never enforced at later
        // switches").
        if hop == 0 {
            if let Some((_, action)) = self.flows[flow_idx].config.edge_policer {
                let now = self.now;
                let policer = self.flows[flow_idx]
                    .policer
                    .as_mut()
                    .expect("policer exists when edge_policer configured");
                match action {
                    PoliceAction::Drop => {
                        if !policer.offer(now, packet.size_bits) {
                            self.monitor.record_edge_drop(packet.flow, now);
                            self.packet_died(packet.flow);
                            return;
                        }
                    }
                    PoliceAction::Tag => {
                        // Non-conforming packets are forwarded but marked;
                        // they do not consume tokens, so conforming traffic
                        // keeps its share of the profile (srTCM-style
                        // colouring rather than debt accounting).
                        if !policer.offer(now, packet.size_bits) {
                            packet.tag = Conformance::Tagged;
                        }
                    }
                }
            }
        }

        // Buffer check, then enqueue.
        let class = self.flows[flow_idx].config.class;
        let buffer_limit = self.topo.link(link).buffer_packets;
        let port = &mut self.ports[link.index()];
        if port.discipline.len() >= buffer_limit {
            self.monitor
                .record_buffer_drop(packet.flow, link.index(), self.now);
            self.telemetry
                .record_link_drop(link.index(), class_bucket(class));
            self.packet_died(packet.flow);
            return;
        }
        port.discipline
            .enqueue(self.now, packet, SchedContext::new(class, self.now));
        if !port.busy {
            self.start_transmission(link, false);
        }
    }

    /// Put the head of `link`'s queue on the wire.
    ///
    /// `may_batch` allows the *tx-complete elision*: when the caller is a
    /// `TxComplete` handler (nothing runs after it for that event) and no
    /// other event is pending at or before this transmission's completion,
    /// the completion is processed inline — the clock jumps forward, the
    /// port frees, and the next queued packet starts immediately — instead
    /// of round-tripping a `TxComplete` through the event queue.  A busy
    /// port then drains its whole back-to-back burst in one loop.  Callers
    /// with work remaining at the current timestamp (packet forwarding,
    /// agent command application) must pass `false`: the elision advances
    /// `self.now`.
    fn start_transmission(&mut self, link: LinkId, may_batch: bool) {
        let params = *self.topo.link(link);
        loop {
            let port = &mut self.ports[link.index()];
            debug_assert!(!port.busy);
            let d = port
                .discipline
                .dequeue(self.now)
                .expect("start_transmission called with a non-empty queue");
            port.busy = true;
            let waiting = d.queueing_delay(self.now);
            let tx_time = ispn_sim::time::transmission_time(d.packet.size_bits, params.rate_bps);
            // Live measurement feedback: a transmitted predicted-class packet
            // reports its per-hop queueing delay to this link's admission
            // controller (the d̂ⱼ of Section 9).
            if let Some(ad) = port.admission.as_mut() {
                if let ServiceClass::Predicted { priority } = d.class {
                    ad.controller
                        .observe_class_delay(self.now, priority, waiting);
                }
            }
            self.monitor.record_transmission(
                link.index(),
                d.class,
                waiting,
                tx_time,
                d.packet.size_bits,
                self.now,
            );
            // The packet is now committed to this link: advance its hop
            // index so the arrival at the far end forwards onto the next
            // route entry.
            let mut packet = d.packet;
            packet.hop += 1;
            let done = self.now + tx_time;
            // Elide the TxComplete when (a) the completion is inside the
            // current run's horizon (otherwise it must stay pending for a
            // later `run_until`) and (b) no other event would fire at or
            // before it — both conditions together mean the queued
            // `TxComplete` would be the very next event popped, so
            // processing it here is order-identical.
            let within =
                done < self.run_horizon || (self.run_inclusive && done == self.run_horizon);
            let quiet = self.queue.peek_time().is_none_or(|t| t > done);
            if may_batch && within && quiet {
                self.queue
                    .push(done + params.propagation, NetEvent::Arrival { packet });
                self.now = done;
                let port = &mut self.ports[link.index()];
                port.busy = false;
                if port.discipline.is_empty() {
                    return;
                }
                continue;
            }
            if params.propagation == SimTime::ZERO {
                self.queue.push(done, NetEvent::TxArrival { link, packet });
            } else {
                self.queue.push(done, NetEvent::TxComplete { link });
                self.queue
                    .push(done + params.propagation, NetEvent::Arrival { packet });
            }
            return;
        }
    }

    fn on_admission_sample(&mut self, link: LinkId) {
        let rt_bits = self.monitor.link_realtime_bits_sent(link.index());
        let now = self.now;
        let Some(ad) = self.ports[link.index()].admission.as_mut() else {
            return;
        };
        let dt = now.saturating_sub(ad.last_sample).as_secs_f64();
        if dt > 0.0 {
            let bps = rt_bits.saturating_sub(ad.last_rt_bits) as f64 / dt;
            ad.controller.observe_utilization(now, bps);
        }
        ad.last_rt_bits = rt_bits;
        ad.last_sample = now;
        let next = now + ad.sample_interval;
        self.queue.push(next, NetEvent::AdmissionSample { link });
    }

    fn on_tx_complete(&mut self, link: LinkId) {
        let port = &mut self.ports[link.index()];
        port.busy = false;
        if !port.discipline.is_empty() {
            // Nothing runs after this handler for the popped event, so the
            // next transmission may batch-step through its completion.
            self.start_transmission(link, true);
        }
    }

    fn on_tx_arrival(&mut self, link: LinkId, packet: Packet) {
        // Replays the exact order of the unmerged pair: the TxComplete
        // half first (free the port, start the next transmission), then
        // the Arrival half (forward the packet).  `may_batch` must be
        // false — the forward below still has to run at this timestamp.
        let port = &mut self.ports[link.index()];
        port.busy = false;
        if !port.discipline.is_empty() {
            self.start_transmission(link, false);
        }
        self.forward(packet);
    }

    fn deliver(&mut self, packet: Packet) {
        let flow_idx = packet.flow.index();
        let total_delay = self.now.saturating_sub(packet.created_at);
        let fixed = self.fixed_delay(packet.flow, packet.size_bits);
        let queueing_delay = total_delay.saturating_sub(fixed);
        self.monitor
            .record_delivery(packet.flow, queueing_delay, self.now);
        self.packet_died(packet.flow);
        if let Some(sink) = self.flows[flow_idx].config.sink {
            self.dispatch_delivery(
                sink,
                Delivery {
                    packet,
                    queueing_delay,
                    total_delay,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispn_sched::{Averaging, FifoPlus, StrictPriority, Unified, Wfq};

    const MBIT: f64 = 1_000_000.0;
    const PKT: u64 = 1000;

    /// An agent that sends a fixed schedule of packets on one flow.
    struct ScheduledSender {
        flow: FlowId,
        times: Vec<SimTime>,
        next: usize,
        seq: u64,
    }

    impl ScheduledSender {
        fn new(flow: FlowId, times: Vec<SimTime>) -> Self {
            ScheduledSender {
                flow,
                times,
                next: 0,
                seq: 0,
            }
        }
        fn arm(&mut self, api: &mut AgentApi) {
            if self.next < self.times.len() {
                let delay = self.times[self.next].saturating_sub(api.now());
                api.set_timer(delay, 0);
            }
        }
    }

    impl Agent for ScheduledSender {
        fn start(&mut self, api: &mut AgentApi) {
            self.arm(api);
        }
        fn on_timer(&mut self, _token: u64, api: &mut AgentApi) {
            api.send(Packet::data(self.flow, self.seq, PKT, api.now()));
            self.seq += 1;
            self.next += 1;
            self.arm(api);
        }
    }

    /// A sink that records deliveries.
    #[derive(Default)]
    struct RecordingSink {
        delivered: std::rc::Rc<std::cell::RefCell<Vec<Delivery>>>,
    }

    impl Agent for RecordingSink {
        fn on_packet(&mut self, delivery: Delivery, _api: &mut AgentApi) {
            self.delivered.borrow_mut().push(delivery);
        }
    }

    fn two_switch_net() -> (Network, LinkId) {
        let (topo, _nodes, links) = Topology::chain(2, MBIT, SimTime::ZERO, 200);
        (Network::new(topo), links[0])
    }

    #[test]
    fn single_packet_traverses_one_link_with_no_queueing() {
        let (mut net, link) = two_switch_net();
        let flow = net.add_flow(FlowConfig::datagram(vec![link]));
        let agent = ScheduledSender::new(flow, vec![SimTime::from_millis(10)]);
        net.add_agent(Box::new(agent));
        net.run_until(SimTime::from_secs(1));
        let report = net.monitor_mut().flow_report(flow);
        assert_eq!(report.generated, 1);
        assert_eq!(report.delivered, 1);
        // No competing traffic: queueing delay is zero; total = 1 ms tx.
        assert!(report.mean_delay < 1e-9);
        assert_eq!(net.fixed_delay(flow, PKT), SimTime::MILLISECOND);
    }

    #[test]
    fn back_to_back_packets_queue_behind_each_other() {
        let (mut net, link) = two_switch_net();
        let flow = net.add_flow(FlowConfig::datagram(vec![link]));
        // Three packets at the same instant: queueing delays 0, 1, 2 ms.
        let t = SimTime::from_millis(5);
        let agent = ScheduledSender::new(flow, vec![t, t, t]);
        net.add_agent(Box::new(agent));
        net.run_until(SimTime::from_secs(1));
        let report = net.monitor_mut().flow_report(flow);
        assert_eq!(report.delivered, 3);
        assert!(
            (report.mean_delay - 0.001).abs() < 1e-9,
            "{}",
            report.mean_delay
        );
        assert!((report.max_delay - 0.002).abs() < 1e-9);
    }

    #[test]
    fn queueing_delay_excludes_per_hop_transmission_on_long_paths() {
        // Three hops, no competition: queueing delay must be ~0 even though
        // total delay is 3 ms.
        let (topo, _nodes, links) = Topology::chain(4, MBIT, SimTime::ZERO, 200);
        let mut net = Network::new(topo);
        let flow = net.add_flow(FlowConfig::datagram(links.clone()));
        let agent = ScheduledSender::new(flow, vec![SimTime::from_millis(1)]);
        net.add_agent(Box::new(agent));
        net.run_until(SimTime::from_secs(1));
        let report = net.monitor_mut().flow_report(flow);
        assert_eq!(report.delivered, 1);
        assert!(report.mean_delay < 1e-9);
        assert_eq!(net.fixed_delay(flow, PKT), SimTime::from_millis(3));
    }

    #[test]
    fn propagation_delay_is_fixed_not_queueing() {
        let mut topo = Topology::new();
        let a = topo.add_node();
        let b = topo.add_node();
        let l = topo.add_link(a, b, MBIT, SimTime::from_millis(7), 200);
        let mut net = Network::new(topo);
        let flow = net.add_flow(FlowConfig::datagram(vec![l]));
        let agent = ScheduledSender::new(flow, vec![SimTime::ZERO]);
        net.add_agent(Box::new(agent));
        net.run_until(SimTime::from_secs(1));
        let report = net.monitor_mut().flow_report(flow);
        assert!(report.mean_delay < 1e-9);
        assert_eq!(net.fixed_delay(flow, PKT), SimTime::from_millis(8));
    }

    #[test]
    fn buffer_overflow_drops_and_is_counted() {
        let mut topo = Topology::new();
        let a = topo.add_node();
        let b = topo.add_node();
        // Tiny buffer: 2 packets.
        let l = topo.add_link(a, b, MBIT, SimTime::ZERO, 2);
        let mut net = Network::new(topo);
        let flow = net.add_flow(FlowConfig::datagram(vec![l]));
        let t = SimTime::from_millis(1);
        // 5 packets at once: 1 in transmission + 2 buffered, 2 dropped.
        let agent = ScheduledSender::new(flow, vec![t, t, t, t, t]);
        net.add_agent(Box::new(agent));
        net.run_until(SimTime::from_secs(1));
        let report = net.monitor_mut().flow_report(flow);
        assert_eq!(report.generated, 5);
        assert_eq!(report.delivered, 3);
        assert_eq!(report.dropped_buffer, 2);
        assert!((report.loss_rate() - 0.4).abs() < 1e-12);
        let link_report = net.monitor().link_report(0);
        assert_eq!(link_report.drops, 2);
    }

    #[test]
    fn edge_policer_drops_nonconforming_packets() {
        let (mut net, link) = two_switch_net();
        // Bucket of depth 2 packets refilling slowly: a 5-packet burst loses 3.
        let bucket = TokenBucketSpec::per_packets(1.0, 2.0, PKT);
        let flow = net.add_flow(FlowConfig::predicted(
            vec![link],
            0,
            bucket,
            SimTime::from_millis(10),
            0.01,
            PoliceAction::Drop,
        ));
        let t = SimTime::from_millis(1);
        let agent = ScheduledSender::new(flow, vec![t, t, t, t, t]);
        net.add_agent(Box::new(agent));
        net.run_until(SimTime::from_secs(1));
        let report = net.monitor_mut().flow_report(flow);
        assert_eq!(report.dropped_at_edge, 3);
        assert_eq!(report.delivered, 2);
    }

    #[test]
    fn edge_policer_tagging_forwards_but_marks() {
        let (mut net, link) = two_switch_net();
        let bucket = TokenBucketSpec::per_packets(1.0, 1.0, PKT);
        let sink_record = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let sink = net.add_agent(Box::new(RecordingSink {
            delivered: sink_record.clone(),
        }));
        let mut config = FlowConfig::predicted(
            vec![link],
            0,
            bucket,
            SimTime::from_millis(10),
            0.01,
            PoliceAction::Tag,
        )
        .with_sink(sink);
        config.edge_policer = Some((bucket, PoliceAction::Tag));
        let flow = net.add_flow(config);
        let t = SimTime::from_millis(1);
        let agent = ScheduledSender::new(flow, vec![t, t]);
        net.add_agent(Box::new(agent));
        net.run_until(SimTime::from_secs(1));
        let report = net.monitor_mut().flow_report(flow);
        assert_eq!(report.delivered, 2);
        let deliveries = sink_record.borrow();
        assert_eq!(deliveries.len(), 2);
        assert_eq!(deliveries[0].packet.tag, Conformance::Conforming);
        assert_eq!(deliveries[1].packet.tag, Conformance::Tagged);
    }

    #[test]
    fn sink_agent_sees_correct_delay_decomposition() {
        let (mut net, link) = two_switch_net();
        let record = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let sink = net.add_agent(Box::new(RecordingSink {
            delivered: record.clone(),
        }));
        let flow = net.add_flow(FlowConfig::datagram(vec![link]).with_sink(sink));
        let t = SimTime::from_millis(5);
        let agent = ScheduledSender::new(flow, vec![t, t]);
        net.add_agent(Box::new(agent));
        net.run_until(SimTime::from_secs(1));
        let deliveries = record.borrow();
        assert_eq!(deliveries.len(), 2);
        assert_eq!(deliveries[0].total_delay, SimTime::MILLISECOND);
        assert_eq!(deliveries[0].queueing_delay, SimTime::ZERO);
        assert_eq!(deliveries[1].total_delay, SimTime::from_millis(2));
        assert_eq!(deliveries[1].queueing_delay, SimTime::MILLISECOND);
    }

    #[test]
    fn link_utilization_matches_offered_load() {
        let (mut net, link) = two_switch_net();
        let flow = net.add_flow(FlowConfig::datagram(vec![link]));
        // 100 packets, one every 2 ms: the link is busy 50 % of the time.
        let times: Vec<SimTime> = (0..100).map(|i| SimTime::from_millis(2 * i)).collect();
        net.add_agent(Box::new(ScheduledSender::new(flow, times)));
        net.run_until(SimTime::from_millis(200));
        let lr = net.monitor().link_report(0);
        assert!((lr.utilization - 0.5).abs() < 0.02, "{}", lr.utilization);
        assert_eq!(lr.packets_sent, 100);
        // Datagram traffic is not real-time.
        assert_eq!(lr.realtime_utilization, 0.0);
    }

    #[test]
    fn works_with_every_discipline_installed() {
        for which in 0..4 {
            let (topo, _nodes, links) = Topology::chain(3, MBIT, SimTime::ZERO, 200);
            let mut net = Network::new(topo);
            let disc: Discipline = match which {
                0 => Wfq::equal_share(MBIT, 2).into(),
                1 => FifoPlus::new(Averaging::RunningMean).into(),
                2 => StrictPriority::<Fifo>::new(2).into(),
                _ => {
                    let mut u = Unified::new(MBIT, 2, Averaging::RunningMean);
                    u.add_guaranteed_flow(FlowId(0), 200_000.0);
                    u.into()
                }
            };
            net.set_discipline(links[0], disc);
            let f0 = net.add_flow(FlowConfig::guaranteed(links.clone(), 200_000.0));
            let f1 = net.add_flow(FlowConfig {
                route: links.clone(),
                spec: FlowSpec::Datagram,
                class: ServiceClass::Predicted { priority: 0 },
                edge_policer: None,
                sink: None,
            });
            let t = SimTime::from_millis(1);
            net.add_agent(Box::new(ScheduledSender::new(f0, vec![t, t, t])));
            net.add_agent(Box::new(ScheduledSender::new(f1, vec![t, t, t])));
            net.run_until(SimTime::from_secs(1));
            assert_eq!(net.monitor_mut().flow_report(f0).delivered, 3);
            assert_eq!(net.monitor_mut().flow_report(f1).delivered, 3);
        }
    }

    #[test]
    fn repeated_run_until_is_equivalent_to_single_run() {
        let build = || {
            let (mut net, link) = two_switch_net();
            let flow = net.add_flow(FlowConfig::datagram(vec![link]));
            let times: Vec<SimTime> = (0..50).map(|i| SimTime::from_millis(3 * i)).collect();
            net.add_agent(Box::new(ScheduledSender::new(flow, times)));
            (net, flow)
        };
        let (mut a, fa) = build();
        a.run_until(SimTime::from_secs(1));
        let (mut b, fb) = build();
        for k in 1..=10 {
            b.run_until(SimTime::from_millis(100 * k));
        }
        let ra = a.monitor_mut().flow_report(fa);
        let rb = b.monitor_mut().flow_report(fb);
        assert_eq!(ra.delivered, rb.delivered);
        assert_eq!(ra.mean_delay, rb.mean_delay);
        assert_eq!(ra.max_delay, rb.max_delay);
    }

    use ispn_core::admission::{AdmissionConfig, AdmissionController};

    fn controller(rate: f64) -> AdmissionController {
        AdmissionController::new(
            AdmissionConfig::new(rate, 0.9, vec![SimTime::from_millis(100)]),
            10.0,
        )
    }

    #[test]
    fn request_flow_reserves_and_release_frees() {
        let (topo, _nodes, links) = Topology::chain(3, MBIT, SimTime::ZERO, 200);
        let mut net = Network::new(topo);
        for &l in &links {
            net.set_discipline(l, Unified::new(MBIT, 1, Averaging::RunningMean));
            net.enable_admission(l, controller(MBIT), SimTime::SECOND);
        }
        let flow = net
            .request_flow(FlowConfig::guaranteed(links.clone(), 400_000.0))
            .expect("empty network admits");
        assert!(net.flow_active(flow));
        assert_eq!(net.installed_links(flow).len(), 2);
        for &l in &links {
            let ad = net.admission(l).unwrap();
            assert!((ad.reserved_guaranteed_bps() - 400_000.0).abs() < 1e-6);
            assert_eq!(ad.accepted(), 1);
        }
        net.release_flow(flow);
        assert!(!net.flow_active(flow));
        assert!(net.installed_links(flow).is_empty());
        for &l in &links {
            assert_eq!(net.admission(l).unwrap().reserved_guaranteed_bps(), 0.0);
        }
    }

    #[test]
    fn rejected_setup_rolls_back_upstream_reservations() {
        let (topo, _nodes, links) = Topology::chain(3, MBIT, SimTime::ZERO, 200);
        let mut net = Network::new(topo);
        for &l in &links {
            net.enable_admission(l, controller(MBIT), SimTime::SECOND);
        }
        // Saturate the second link so multi-hop setups fail at hop 1.
        let hog = net
            .request_flow(FlowConfig::guaranteed(vec![links[1]], 800_000.0))
            .unwrap();
        let err = net
            .request_flow(FlowConfig::guaranteed(links.clone(), 200_000.0))
            .expect_err("second link is full");
        assert_eq!(err.hop, 1);
        assert_eq!(err.link, links[1]);
        assert!(err.reason.contains("quota"));
        // The first link's partial reservation was rolled back.
        assert_eq!(
            net.admission(links[0]).unwrap().reserved_guaranteed_bps(),
            0.0
        );
        assert!(!net.flow_active(err.flow));
        assert!(net.installed_links(err.flow).is_empty());
        let _ = hog;
    }

    #[test]
    fn inactive_flow_injections_are_discarded_and_counted() {
        let (mut net, link) = two_switch_net();
        let flow = net.add_flow_inactive(FlowConfig::datagram(vec![link]));
        let t = SimTime::from_millis(1);
        net.add_agent(Box::new(ScheduledSender::new(flow, vec![t, t])));
        net.run_until(SimTime::from_millis(50));
        let r = net.monitor_mut().flow_report(flow);
        assert_eq!(r.generated, 0);
        assert_eq!(r.delivered, 0);
        assert_eq!(r.dropped_inactive, 2);
        // Activation opens the gate.
        net.activate_flow(flow);
        net.add_agent(Box::new(ScheduledSender::new(
            flow,
            vec![SimTime::from_millis(60)],
        )));
        net.run_until(SimTime::from_millis(100));
        let r = net.monitor_mut().flow_report(flow);
        assert_eq!(r.delivered, 1);
        assert_eq!(r.dropped_inactive, 2);
    }

    #[test]
    fn admission_sampling_feeds_live_utilization() {
        let (mut net, link) = two_switch_net();
        net.enable_admission(link, controller(MBIT), SimTime::SECOND);
        let flow = net.add_flow(FlowConfig {
            route: vec![link],
            spec: FlowSpec::Datagram,
            class: ServiceClass::Predicted { priority: 0 },
            edge_policer: None,
            sink: None,
        });
        // 500 packets back to back: the link carries 500 kbit over 1 s.
        let times: Vec<SimTime> = (0..500).map(|_| SimTime::ZERO).collect();
        net.add_agent(Box::new(ScheduledSender::new(flow, times)));
        net.run_until(SimTime::from_secs(3));
        let meas = net
            .admission_mut(link)
            .unwrap()
            .measurement(SimTime::from_secs(3));
        // The windowed mean saw ≈500 kbit/s samples; with the 1.2 safety
        // factor the conservative estimate lands well above zero.
        assert!(
            meas.realtime_util_bps > 100_000.0,
            "ν̂ = {}",
            meas.realtime_util_bps
        );
        // Per-hop waiting times of the predicted class reached d̂ⱼ.
        assert!(meas.class_delay[0] > SimTime::ZERO);
    }

    #[test]
    fn agent_driven_setup_and_release_at_event_time() {
        struct Requester {
            link: LinkId,
            got: std::rc::Rc<std::cell::RefCell<Vec<Result<FlowId, SetupError>>>>,
        }
        impl Agent for Requester {
            fn start(&mut self, api: &mut AgentApi) {
                api.set_timer(SimTime::from_millis(5), 0);
            }
            fn on_timer(&mut self, _token: u64, api: &mut AgentApi) {
                api.request_flow(FlowConfig::guaranteed(vec![self.link], 500_000.0), 7);
            }
            fn on_setup(
                &mut self,
                token: u64,
                result: Result<FlowId, SetupError>,
                api: &mut AgentApi,
            ) {
                assert_eq!(token, 7);
                if let Ok(flow) = &result {
                    api.release_flow(*flow);
                }
                self.got.borrow_mut().push(result);
            }
        }
        let (mut net, link) = two_switch_net();
        net.enable_admission(link, controller(MBIT), SimTime::SECOND);
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        net.add_agent(Box::new(Requester {
            link,
            got: got.clone(),
        }));
        net.run_until(SimTime::from_millis(50));
        let got = got.borrow();
        assert_eq!(got.len(), 1);
        let flow = *got[0].as_ref().expect("admitted");
        // The agent released it inside on_setup.
        assert!(!net.flow_active(flow));
        assert_eq!(net.admission(link).unwrap().reserved_guaranteed_bps(), 0.0);
    }

    #[test]
    fn installed_flow_grows_footprint_accounting() {
        // Satellite regression: flow_table_bytes must include the
        // schedulers' per-flow state and reservation_state_bytes the
        // per-flow reservation entries — before the fix both ignored the
        // ports entirely, so installing a guaranteed flow left
        // reservation_state_bytes unchanged.
        let (mut net, link) = two_switch_net();
        net.set_discipline(link, Wfq::new(MBIT, 100_000.0));
        let table_before = net.flow_table_bytes();
        let resv_before = net.reservation_state_bytes();
        let flow = net
            .request_flow(FlowConfig::guaranteed(vec![link], 300_000.0))
            .expect("uncontended link admits");
        assert!(
            net.flow_table_bytes() > table_before,
            "flow table footprint must grow when a flow is installed"
        );
        assert!(
            net.reservation_state_bytes() > resv_before,
            "reservation footprint must include the scheduler's per-flow entries"
        );
        // Releasing returns the scheduler's reservation entry.
        net.release_flow(flow);
        assert_eq!(net.reservation_state_bytes(), resv_before);
    }

    #[test]
    fn retired_flow_slot_is_recycled() {
        let (mut net, link) = two_switch_net();
        let flow = net.add_flow(FlowConfig::datagram(vec![link]));
        let t = SimTime::from_millis(1);
        net.add_agent(Box::new(ScheduledSender::new(flow, vec![t, t, t])));
        net.run_until(SimTime::from_millis(2));
        // Packets are still on the wire: retiring now must not report the
        // flow as drained yet.
        net.release_flow(flow);
        net.retire_flow(flow);
        assert!(net.flow_in_flight(flow) > 0);
        assert!(net.take_drained_flows().is_empty());
        net.run_until(SimTime::from_millis(50));
        assert_eq!(net.flow_in_flight(flow), 0);
        assert_eq!(net.take_drained_flows(), vec![flow]);
        // Second take is empty (each drain reported once).
        assert!(net.take_drained_flows().is_empty());
        net.recycle_flow_slot(flow);
        // The next registration reuses the freed slot: the table stays flat
        // and the newcomer starts with clean statistics.
        let table = net.flow_table_bytes();
        let reused = net.add_flow(FlowConfig::datagram(vec![link]));
        assert_eq!(reused, flow);
        assert_eq!(net.num_flows(), 1);
        assert_eq!(net.flow_table_bytes(), table);
        let r = net.monitor_mut().flow_report(reused);
        assert_eq!(r.generated, 0);
        assert_eq!(r.delivered, 0);
    }

    #[test]
    fn revived_flow_is_not_recycled() {
        let (mut net, link) = two_switch_net();
        let flow = net.add_flow(FlowConfig::datagram(vec![link]));
        net.release_flow(flow);
        net.retire_flow(flow);
        // The retire drains immediately (nothing in flight) …
        assert_eq!(net.take_drained_flows(), vec![flow]);
        // … but the flow is re-activated before the driver recycles it:
        // the safety valve keeps the slot live.
        net.activate_flow(flow);
        net.recycle_flow_slot(flow);
        let fresh = net.add_flow(FlowConfig::datagram(vec![link]));
        assert_ne!(fresh, flow, "live slot must not be handed out again");
    }

    #[test]
    fn steady_state_traffic_stops_growing_queue_pools() {
        // Tentpole regression: after warm-up, a steady workload must not
        // allocate new queue segments — the pool high-water and grow
        // counters stay flat over the second half of the run.
        let (mut net, link) = two_switch_net();
        net.set_discipline(link, Unified::new(MBIT, 2, Averaging::RunningMean));
        let flow = net.add_flow(FlowConfig::datagram(vec![link]));
        // Six identical 40-packet bursts, each fully drained (40 ms of
        // service at 1 ms/packet) before the next: the first burst sets the
        // pool high-water, the rest must live off recycled segments.
        let times: Vec<SimTime> = (0..6)
            .flat_map(|burst| (0..40).map(move |_| SimTime::from_millis(60 * burst)))
            .collect();
        net.add_agent(Box::new(ScheduledSender::new(flow, times)));
        net.run_until(SimTime::from_millis(130));
        let grow_mid = net.sched_pool_grow_events();
        let high_mid = net.sched_pool_segments_high_water();
        net.run_until(SimTime::from_millis(400));
        assert_eq!(
            net.sched_pool_grow_events(),
            grow_mid,
            "steady-state traffic must be allocation-free after warm-up"
        );
        assert_eq!(net.sched_pool_segments_high_water(), high_mid);
    }

    #[test]
    #[should_panic]
    fn invalid_route_rejected() {
        let (topo, _nodes, links) = Topology::chain(4, MBIT, SimTime::ZERO, 200);
        let mut net = Network::new(topo);
        net.add_flow(FlowConfig::datagram(vec![links[0], links[2]]));
    }

    #[test]
    #[should_panic]
    fn swapping_discipline_after_start_rejected() {
        let (mut net, link) = two_switch_net();
        let flow = net.add_flow(FlowConfig::datagram(vec![link]));
        net.add_agent(Box::new(ScheduledSender::new(flow, vec![SimTime::ZERO])));
        net.run_until(SimTime::from_millis(10));
        net.set_discipline(link, Fifo::new());
    }
}
