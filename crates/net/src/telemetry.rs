//! Engine telemetry for the network: what the event loop, ports and
//! admission controllers actually did during a run.
//!
//! Unlike the measurement [`Monitor`](crate::monitor::Monitor) — which is
//! warm-up-gated and feeds the *paper's* tables — these counters see every
//! event from t = 0 and exist to answer engineering questions: how many
//! events the run processed, how deep queues got, where packets were
//! dropped, how often admission said no, and how big the flow table grew.
//! Every value is a deterministic function of the simulated event sequence
//! (no wall-clock input), so two same-seed runs report identical numbers.

use ispn_sched::ProbeStats;
use ispn_telemetry::{Counter, PerClass, Registry, CLASS_LABELS, NUM_CLASS_BUCKETS};

/// Per-run engine counters owned by [`Network`](crate::Network).
///
/// The per-link enqueue/dequeue counts and depth high-water marks live in
/// the [`Probed`](ispn_sched::Probed) wrapper around each port's
/// discipline; this struct holds what the switch itself observes (drops
/// happen *before* a packet reaches the discipline, admission verdicts
/// never reach it at all).
#[derive(Debug, Default)]
pub struct NetTelemetry {
    /// Buffer-overflow drops at each link's output port, per class bucket.
    link_drops: Vec<PerClass<Counter>>,
    /// Flow admissions accepted, summed over links
    /// ([`admit_flow_on_link`](crate::Network::admit_flow_on_link) outcomes).
    admission_accepted: Counter,
    /// Flow admissions rejected (controller refusals and scheduler vetoes).
    admission_rejected: Counter,
}

impl NetTelemetry {
    /// Telemetry for a network with `num_links` links.
    pub fn new(num_links: usize) -> Self {
        NetTelemetry {
            link_drops: vec![PerClass::default(); num_links],
            admission_accepted: Counter::new(),
            admission_rejected: Counter::new(),
        }
    }

    /// Count one buffer drop at `link` in class bucket `bucket`.
    #[inline]
    pub(crate) fn record_link_drop(&mut self, link: usize, bucket: usize) {
        self.link_drops[link].bucket_mut(bucket).incr();
    }

    /// Count one accepted admission request.
    #[inline]
    pub(crate) fn record_admission_accept(&mut self) {
        self.admission_accepted.incr();
    }

    /// Count one rejected admission request.
    #[inline]
    pub(crate) fn record_admission_reject(&mut self) {
        self.admission_rejected.incr();
    }

    /// Buffer drops at one link's output port, per class bucket.
    pub fn link_drops(&self, link: usize) -> &PerClass<Counter> {
        &self.link_drops[link]
    }

    /// Total buffer drops across all links and classes.
    pub fn total_drops(&self) -> u64 {
        self.link_drops.iter().map(PerClass::total).sum()
    }

    /// Per-link admission verdicts accepted so far.
    pub fn admission_accepted(&self) -> u64 {
        self.admission_accepted.get()
    }

    /// Per-link admission verdicts rejected so far.
    pub fn admission_rejected(&self) -> u64 {
        self.admission_rejected.get()
    }

    /// Render this struct's counters plus the per-port `probes` into a
    /// named-metric [`Registry`] (one entry per non-zero per-link counter,
    /// totals always present).
    pub fn registry(&self, probes: &[&ProbeStats]) -> Registry {
        let mut reg = Registry::new();
        reg.record("admission.accepted", self.admission_accepted());
        reg.record("admission.rejected", self.admission_rejected());
        reg.record("drops.total", self.total_drops());
        for (i, (drops, probe)) in self.link_drops.iter().zip(probes).enumerate() {
            reg.record(
                format!("link.{i}.depth_high_water"),
                probe.depth_high_water.get(),
            );
            for (bucket, label) in CLASS_LABELS.iter().enumerate().take(NUM_CLASS_BUCKETS) {
                let enq = probe.enqueued.bucket(bucket).get();
                let deq = probe.dequeued.bucket(bucket).get();
                let drop = drops.bucket(bucket).get();
                if enq > 0 {
                    reg.record(format!("link.{i}.enqueued.{label}"), enq);
                }
                if deq > 0 {
                    reg.record(format!("link.{i}.dequeued.{label}"), deq);
                }
                if drop > 0 {
                    reg.record(format!("link.{i}.drops.{label}"), drop);
                }
            }
        }
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drops_and_admissions_accumulate() {
        let mut t = NetTelemetry::new(2);
        t.record_link_drop(0, ispn_telemetry::CLASS_DATAGRAM);
        t.record_link_drop(0, ispn_telemetry::CLASS_DATAGRAM);
        t.record_link_drop(1, ispn_telemetry::CLASS_PREDICTED);
        t.record_admission_accept();
        t.record_admission_reject();
        t.record_admission_reject();
        assert_eq!(t.total_drops(), 3);
        assert_eq!(
            t.link_drops(0).bucket(ispn_telemetry::CLASS_DATAGRAM).get(),
            2
        );
        assert_eq!(t.admission_accepted(), 1);
        assert_eq!(t.admission_rejected(), 2);
    }

    #[test]
    fn registry_names_totals_and_nonzero_links() {
        let mut t = NetTelemetry::new(1);
        t.record_link_drop(0, ispn_telemetry::CLASS_DATAGRAM);
        let probe = ProbeStats::default();
        let reg = t.registry(&[&probe]);
        assert_eq!(reg.get("drops.total"), Some(1));
        assert_eq!(reg.get("admission.accepted"), Some(0));
        assert_eq!(reg.get("link.0.drops.datagram"), Some(1));
        // Zero-valued per-class counters are elided.
        assert_eq!(reg.get("link.0.enqueued.datagram"), None);
    }
}
