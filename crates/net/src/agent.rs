//! Endpoint agents: the things that produce and consume packets.
//!
//! Traffic sources (`ispn-traffic`), the simplified TCP endpoints
//! (`ispn-transport`) and play-back receivers all attach to the network as
//! *agents*.  The network calls an agent when the simulation starts, when
//! one of the agent's timers fires, and when a packet addressed to one of
//! the agent's flows is delivered; the agent responds by queueing outbound
//! packets and new timers on the [`AgentApi`], which the network applies
//! after the call returns (a command pattern — agents never hold a mutable
//! reference to the network, which keeps re-entrancy impossible by
//! construction).

use ispn_core::{FlowId, Packet};
use ispn_sim::SimTime;

use crate::network::{FlowConfig, SetupError};

/// Identifier of an agent registered with a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgentId(pub usize);

/// A packet delivered to its destination, together with the delay
/// decomposition the monitor computed for it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// The delivered packet.
    pub packet: Packet,
    /// End-to-end queueing (waiting) delay: total delay minus the fixed
    /// transmission and propagation components along the route.
    pub queueing_delay: SimTime,
    /// Total delay from generation to delivery.
    pub total_delay: SimTime,
}

/// The command buffer an agent fills during a callback.
#[derive(Debug, Default)]
pub struct AgentApi {
    now: SimTime,
    outbox: Vec<Packet>,
    timers: Vec<(SimTime, u64)>,
    setups: Vec<(FlowConfig, u64)>,
    releases: Vec<FlowId>,
}

/// Everything an agent asked for during one callback.
#[derive(Debug, Default)]
pub(crate) struct AgentCommands {
    pub packets: Vec<Packet>,
    pub timers: Vec<(SimTime, u64)>,
    pub setups: Vec<(FlowConfig, u64)>,
    pub releases: Vec<FlowId>,
}

impl AgentApi {
    /// Create an API snapshot for a callback occurring at `now`.
    ///
    /// Public so downstream crates can unit-test their own agents by calling
    /// the trait methods directly; inside a simulation the network creates
    /// these for every callback.
    pub fn new(now: SimTime) -> Self {
        AgentApi {
            now,
            outbox: Vec::new(),
            timers: Vec::new(),
            setups: Vec::new(),
            releases: Vec::new(),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Send a packet.  The packet's flow must be registered with the
    /// network; it is injected at the flow's first switch when the callback
    /// returns.
    pub fn send(&mut self, packet: Packet) {
        self.outbox.push(packet);
    }

    /// Arrange for [`Agent::on_timer`] to be called `delay` from now with
    /// the given token.
    pub fn set_timer(&mut self, delay: SimTime, token: u64) {
        self.timers.push((delay, token));
    }

    /// Ask the network to set up a new flow at the current event time
    /// (hop-by-hop admission control runs when the callback returns).  The
    /// outcome arrives through [`Agent::on_setup`] with the same token.
    pub fn request_flow(&mut self, config: FlowConfig, token: u64) {
        self.setups.push((config, token));
    }

    /// Ask the network to tear down a flow's reservations when the callback
    /// returns.
    pub fn release_flow(&mut self, flow: FlowId) {
        self.releases.push(flow);
    }

    /// Number of packets queued for sending in this callback (used by
    /// tests).
    pub fn pending_sends(&self) -> usize {
        self.outbox.len()
    }

    pub(crate) fn into_commands(self) -> AgentCommands {
        AgentCommands {
            packets: self.outbox,
            timers: self.timers,
            setups: self.setups,
            releases: self.releases,
        }
    }
}

/// An endpoint attached to the network.
pub trait Agent {
    /// Called once, at simulated time zero, before any events run.
    fn start(&mut self, api: &mut AgentApi) {
        let _ = api;
    }

    /// Called when a timer set through [`AgentApi::set_timer`] fires.
    fn on_timer(&mut self, token: u64, api: &mut AgentApi) {
        let _ = (token, api);
    }

    /// Called when a packet belonging to a flow whose sink is this agent is
    /// delivered at its destination.
    fn on_packet(&mut self, delivery: Delivery, api: &mut AgentApi) {
        let _ = (delivery, api);
    }

    /// Called with the outcome of a flow setup this agent requested through
    /// [`AgentApi::request_flow`], echoing the request's token.
    fn on_setup(&mut self, token: u64, result: Result<FlowId, SetupError>, api: &mut AgentApi) {
        let _ = (token, result, api);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispn_core::FlowId;

    #[test]
    fn api_collects_commands() {
        let mut api = AgentApi::new(SimTime::from_millis(5));
        assert_eq!(api.now(), SimTime::from_millis(5));
        api.send(Packet::data(FlowId(1), 0, 1000, api.now()));
        api.set_timer(SimTime::from_millis(10), 42);
        api.release_flow(FlowId(3));
        assert_eq!(api.pending_sends(), 1);
        let cmds = api.into_commands();
        assert_eq!(cmds.packets.len(), 1);
        assert_eq!(cmds.timers, vec![(SimTime::from_millis(10), 42)]);
        assert_eq!(cmds.releases, vec![FlowId(3)]);
        assert!(cmds.setups.is_empty());
    }

    #[test]
    fn default_trait_methods_are_no_ops() {
        struct Lazy;
        impl Agent for Lazy {}
        let mut l = Lazy;
        let mut api = AgentApi::new(SimTime::ZERO);
        l.start(&mut api);
        l.on_timer(0, &mut api);
        l.on_packet(
            Delivery {
                packet: Packet::data(FlowId(0), 0, 1000, SimTime::ZERO),
                queueing_delay: SimTime::ZERO,
                total_delay: SimTime::MILLISECOND,
            },
            &mut api,
        );
        assert_eq!(api.pending_sends(), 0);
    }
}
