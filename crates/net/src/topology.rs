//! Nodes, links and the topology builder.
//!
//! Only switches are modelled as nodes; the paper attaches each host to its
//! switch by an infinitely fast link, so host behaviour collapses into
//! "inject at the first switch / deliver at the last switch" and needs no
//! node of its own.  Links are unidirectional; a full-duplex cable is two
//! links.

use ispn_sim::SimTime;

/// Identifier of a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifier of a unidirectional link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

impl LinkId {
    /// The numeric index of the link.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Static parameters of one unidirectional link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Upstream switch (the output port that queues for this link).
    pub from: NodeId,
    /// Downstream switch.
    pub to: NodeId,
    /// Transmission rate in bits per second.
    pub rate_bps: f64,
    /// Propagation delay.
    pub propagation: SimTime,
    /// Output buffer limit in packets (the Appendix uses 200).
    pub buffer_packets: usize,
}

/// A static network topology: a set of switches and directed links.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    num_nodes: usize,
    links: Vec<LinkParams>,
}

impl Topology {
    /// Create an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Add a switch and return its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.num_nodes);
        self.num_nodes += 1;
        id
    }

    /// Add `n` switches and return their ids.
    pub fn add_nodes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node()).collect()
    }

    /// Add a unidirectional link and return its id.
    ///
    /// # Panics
    /// Panics if either endpoint does not exist, the rate is not positive,
    /// or the buffer is zero.
    pub fn add_link(
        &mut self,
        from: NodeId,
        to: NodeId,
        rate_bps: f64,
        propagation: SimTime,
        buffer_packets: usize,
    ) -> LinkId {
        assert!(from.0 < self.num_nodes, "unknown from-node {from:?}");
        assert!(to.0 < self.num_nodes, "unknown to-node {to:?}");
        assert!(from != to, "self-loops are not allowed");
        assert!(rate_bps > 0.0, "link rate must be positive");
        assert!(buffer_packets > 0, "buffer must hold at least one packet");
        let id = LinkId(self.links.len());
        self.links.push(LinkParams {
            from,
            to,
            rate_bps,
            propagation,
            buffer_packets,
        });
        id
    }

    /// Number of switches.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Parameters of a link.
    pub fn link(&self, id: LinkId) -> &LinkParams {
        &self.links[id.0]
    }

    /// All links, indexed by [`LinkId`].
    pub fn links(&self) -> &[LinkParams] {
        &self.links
    }

    /// The links whose upstream node is `node` (that node's output ports).
    pub fn outgoing(&self, node: NodeId) -> Vec<LinkId> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| l.from == node)
            .map(|(i, _)| LinkId(i))
            .collect()
    }

    /// Shortest path (fewest hops) from `src` to `dst` as a list of link
    /// ids, found by breadth-first search; `None` if unreachable.  Ties are
    /// broken toward lower link ids so routing is deterministic.
    pub fn shortest_path(&self, src: NodeId, dst: NodeId) -> Option<Vec<LinkId>> {
        if src == dst {
            return Some(Vec::new());
        }
        let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; self.num_nodes];
        let mut visited = vec![false; self.num_nodes];
        let mut queue = std::collections::VecDeque::new();
        visited[src.0] = true;
        queue.push_back(src);
        while let Some(n) = queue.pop_front() {
            for (i, l) in self.links.iter().enumerate() {
                if l.from == n && !visited[l.to.0] {
                    visited[l.to.0] = true;
                    prev[l.to.0] = Some((n, LinkId(i)));
                    if l.to == dst {
                        // Reconstruct.
                        let mut path = Vec::new();
                        let mut cur = dst;
                        while cur != src {
                            let (p, link) = prev[cur.0].expect("visited nodes have predecessors");
                            path.push(link);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(l.to);
                }
            }
        }
        None
    }

    /// Verify that a route is a contiguous path (each link starts where the
    /// previous one ended).
    pub fn validate_route(&self, route: &[LinkId]) -> bool {
        if route.is_empty() {
            return false;
        }
        for w in route.windows(2) {
            if self.link(w[0]).to != self.link(w[1]).from {
                return false;
            }
        }
        route.iter().all(|l| l.0 < self.links.len())
    }

    /// Build a chain of `n` switches connected left-to-right by links with
    /// the given parameters (the Figure-1 topology is `chain(5, …)` plus its
    /// hosts).  Returns the node ids and link ids in order.
    pub fn chain(
        n: usize,
        rate_bps: f64,
        propagation: SimTime,
        buffer_packets: usize,
    ) -> (Topology, Vec<NodeId>, Vec<LinkId>) {
        assert!(n >= 2, "a chain needs at least two switches");
        let mut topo = Topology::new();
        let nodes = topo.add_nodes(n);
        let mut links = Vec::new();
        for i in 0..n - 1 {
            links.push(topo.add_link(
                nodes[i],
                nodes[i + 1],
                rate_bps,
                propagation,
                buffer_packets,
            ));
        }
        (topo, nodes, links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MBIT: f64 = 1_000_000.0;

    #[test]
    fn build_nodes_and_links() {
        let mut t = Topology::new();
        let a = t.add_node();
        let b = t.add_node();
        let l = t.add_link(a, b, MBIT, SimTime::ZERO, 200);
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.num_links(), 1);
        assert_eq!(t.link(l).from, a);
        assert_eq!(t.link(l).to, b);
        assert_eq!(t.outgoing(a), vec![l]);
        assert!(t.outgoing(b).is_empty());
    }

    #[test]
    fn chain_constructor_matches_figure_1_shape() {
        let (t, nodes, links) = Topology::chain(5, MBIT, SimTime::ZERO, 200);
        assert_eq!(nodes.len(), 5);
        assert_eq!(links.len(), 4);
        for (i, l) in links.iter().enumerate() {
            assert_eq!(t.link(*l).from, nodes[i]);
            assert_eq!(t.link(*l).to, nodes[i + 1]);
        }
    }

    #[test]
    fn shortest_path_on_chain() {
        let (t, nodes, links) = Topology::chain(5, MBIT, SimTime::ZERO, 200);
        let p = t.shortest_path(nodes[0], nodes[4]).unwrap();
        assert_eq!(p, links);
        let p = t.shortest_path(nodes[2], nodes[3]).unwrap();
        assert_eq!(p, vec![links[2]]);
        assert_eq!(t.shortest_path(nodes[2], nodes[2]).unwrap(), vec![]);
        // The chain has no reverse links.
        assert!(t.shortest_path(nodes[4], nodes[0]).is_none());
    }

    #[test]
    fn validate_route_checks_contiguity() {
        let (t, _nodes, links) = Topology::chain(4, MBIT, SimTime::ZERO, 200);
        assert!(t.validate_route(&[links[0], links[1], links[2]]));
        assert!(t.validate_route(&[links[1]]));
        assert!(!t.validate_route(&[links[0], links[2]]));
        assert!(!t.validate_route(&[]));
    }

    #[test]
    #[should_panic]
    fn self_loop_rejected() {
        let mut t = Topology::new();
        let a = t.add_node();
        t.add_link(a, a, MBIT, SimTime::ZERO, 10);
    }

    #[test]
    #[should_panic]
    fn unknown_node_rejected() {
        let mut t = Topology::new();
        let a = t.add_node();
        t.add_link(a, NodeId(5), MBIT, SimTime::ZERO, 10);
    }

    #[test]
    #[should_panic]
    fn zero_buffer_rejected() {
        let mut t = Topology::new();
        let a = t.add_node();
        let b = t.add_node();
        t.add_link(a, b, MBIT, SimTime::ZERO, 0);
    }
}
