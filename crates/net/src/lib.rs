//! # ispn-net — the discrete-event packet network
//!
//! This crate is the simulator substrate the paper's evaluation runs on: a
//! network of output-queued switches joined by finite-speed links, carrying
//! flows whose per-switch scheduling behaviour is supplied by `ispn-sched`
//! disciplines and whose traffic is produced by `ispn-traffic` /
//! `ispn-transport` agents.
//!
//! The model follows the Appendix of CSZ'92:
//!
//! * hosts are attached to switches by infinitely fast links, so traffic is
//!   injected directly at its first switch and delivered as soon as it has
//!   fully arrived at its last switch;
//! * every inter-switch link has a configurable rate (1 Mbit/s in the
//!   paper), an output buffer with a packet-count limit (200 packets), and
//!   one pluggable queueing discipline;
//! * predicted and datagram flows may be policed at the network edge by a
//!   token bucket (drop or tag), and sources themselves may carry their own
//!   policer (the Appendix's `(A, 50)` source filter lives in
//!   `ispn-traffic`);
//! * the monitor records, per flow, the end-to-end *queueing* delay of every
//!   delivered packet — total delay minus the fixed transmission and
//!   propagation components — which is exactly the quantity the paper's
//!   tables report in units of the packet transmission time.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod agent;
pub mod monitor;
pub mod network;
pub mod telemetry;
pub mod topology;

pub use agent::{Agent, AgentApi, AgentId, Delivery};
// Part of `Network`'s public surface (`install_guaranteed_rate` returns it),
// re-exported so callers need not depend on `ispn-sched` directly.
pub use ispn_sched::GuaranteedInstall;
pub use monitor::{FlowReport, LinkReport, Monitor};
pub use network::{FlowConfig, Network, PoliceAction, SetupError};
pub use telemetry::NetTelemetry;
pub use topology::{LinkId, LinkParams, NodeId, Topology};
